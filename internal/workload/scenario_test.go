package workload

import (
	"math"
	"reflect"
	"strconv"
	"testing"

	"bandslim/internal/sim"
)

// drainScenario collects a scenario's full op stream.
func drainScenario(t *testing.T, s Scenario) []ScenarioOp {
	t.Helper()
	var ops []ScenarioOp
	for {
		op, ok := s.Next()
		if !ok {
			break
		}
		ops = append(ops, op)
	}
	if s.Remaining() != 0 {
		t.Fatalf("%s: Remaining() = %d after exhaustion", s.Name(), s.Remaining())
	}
	return ops
}

// keyNum decodes the numeric part of a scenario key ("y%08d").
func keyNum(t *testing.T, key []byte) int {
	t.Helper()
	n, err := strconv.Atoi(string(key[1:]))
	if err != nil {
		t.Fatalf("malformed scenario key %q", key)
	}
	return n
}

func TestNewScenarioValidation(t *testing.T) {
	good := ScenarioConfig{Records: 10, Ops: 10, Seed: 1}
	if _, err := NewScenario("nope", good); err == nil {
		t.Error("unknown scenario name accepted")
	}
	bad := []ScenarioConfig{
		{Records: 0, Ops: 10},
		{Records: 10, Ops: -1},
		{Records: 10, Ops: 10, ValueMin: 8, ValueMax: 4},
		{Records: 10, Ops: 10, Arrival: ArrivalConfig{Rate: -5}},
		{Records: 10, Ops: 10, Shifts: HotShifts{{Rotate: -1}}},
	}
	for i, cfg := range bad {
		if _, err := NewScenario("a", cfg); err == nil {
			t.Errorf("bad config %d accepted: %+v", i, cfg)
		}
	}
	for _, name := range append(ScenarioNames(), "a", "f") {
		if _, err := NewScenario(name, good); err != nil {
			t.Errorf("NewScenario(%q): %v", name, err)
		}
	}
}

func TestScenarioDeterminism(t *testing.T) {
	cfg := ScenarioConfig{
		Records: 200, Ops: 1000, Seed: 42,
		Arrival: ArrivalConfig{Rate: 50000, Jitter: true},
	}
	for _, name := range ScenarioNames() {
		a, err := NewScenario(name, cfg)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		b, _ := NewScenario(name, cfg)
		opsA, opsB := drainScenario(t, a), drainScenario(t, b)
		if !reflect.DeepEqual(opsA, opsB) {
			t.Fatalf("%s: identically seeded runs diverge", name)
		}
		other := cfg
		other.Seed = 43
		c, _ := NewScenario(name, other)
		if reflect.DeepEqual(opsA, drainScenario(t, c)) {
			t.Fatalf("%s: different seeds produced the identical stream", name)
		}
	}
}

func TestScenarioLoadPhaseAndShape(t *testing.T) {
	cfg := ScenarioConfig{Records: 100, Ops: 2000, Seed: 7}
	for _, name := range ScenarioNames() {
		s, err := NewScenario(name, cfg)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if want := cfg.Records + cfg.Ops; s.Remaining() != want {
			t.Fatalf("%s: Remaining() = %d, want %d", name, s.Remaining(), want)
		}
		ops := drainScenario(t, s)
		if len(ops) != cfg.Records+cfg.Ops {
			t.Fatalf("%s: got %d ops, want %d", name, len(ops), cfg.Records+cfg.Ops)
		}
		inserts := 0
		for i, op := range ops {
			if i < cfg.Records {
				if op.Kind != OpPut || keyNum(t, op.Key) != i || op.At != 0 {
					t.Fatalf("%s: load op %d = %+v, want sequential unpaced put", name, i, op)
				}
				continue
			}
			n := keyNum(t, op.Key)
			if op.Kind == OpPut && n >= cfg.Records {
				// Fresh insert: must extend the keyspace contiguously.
				if n != cfg.Records+inserts {
					t.Fatalf("%s: insert key %d out of order (want %d)", name, n, cfg.Records+inserts)
				}
				inserts++
			} else if n < 0 || n >= cfg.Records+inserts {
				t.Fatalf("%s: op %d targets key %d outside keyspace of %d",
					name, i, n, cfg.Records+inserts)
			}
			switch op.Kind {
			case OpPut, OpRMW:
				if op.N < 64 || op.N > 1024 {
					t.Fatalf("%s: value size %d outside default 64..1024", name, op.N)
				}
			case OpScan:
				if op.N < 1 || op.N > 64 {
					t.Fatalf("%s: scan length %d outside default 1..64", name, op.N)
				}
			default:
				if op.N != 0 {
					t.Fatalf("%s: %v op carries N=%d", name, op.Kind, op.N)
				}
			}
		}
	}
}

func TestScenarioMixFractions(t *testing.T) {
	const tol = 0.03
	cfg := ScenarioConfig{Records: 500, Ops: 20000, Seed: 11}
	for name, classes := range mixes {
		s, err := NewScenario(name, cfg)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		ops := drainScenario(t, s)[cfg.Records:]
		got := map[OpKind]float64{}
		for _, op := range ops {
			got[op.Kind] += 1 / float64(len(ops))
		}
		want := map[OpKind]float64{}
		for _, c := range classes {
			want[c.kind] += c.share
		}
		for kind, w := range want {
			if g := got[kind]; math.Abs(g-w) > tol {
				t.Errorf("%s: realized %v fraction %.3f, want %.2f±%.2f", name, kind, g, w, tol)
			}
		}
		for kind, g := range got {
			if want[kind] == 0 {
				t.Errorf("%s: unexpected %v ops (fraction %.3f)", name, kind, g)
			}
		}
	}
}

// TestScenarioZipfianChiSquared checks the realized key histogram of the
// read-only workload against the exact zipfian-through-scramble expectation
// with a chi-squared statistic. The run is seeded and deterministic, so the
// bound is a regression tripwire, not a flaky statistical test.
func TestScenarioZipfianChiSquared(t *testing.T) {
	const (
		records = 100
		ops     = 50000
		theta   = 0.99
	)
	s, err := NewScenario("c", ScenarioConfig{Records: records, Ops: ops, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	counts := make([]int, records)
	for _, op := range drainScenario(t, s)[records:] {
		counts[keyNum(t, op.Key)]++
	}
	// Expected counts: zipfian pmf over ranks, pushed through the scramble
	// map (collisions merge probabilities, exactly as the generator does).
	h := 0.0
	for r := 1; r <= records; r++ {
		h += 1 / math.Pow(float64(r), theta)
	}
	expect := make([]float64, records)
	for r := 0; r < records; r++ {
		p := 1 / math.Pow(float64(r+1), theta) / h
		expect[scramble(uint64(r))%records] += p * ops
	}
	chi2, df := 0.0, 0
	for k := 0; k < records; k++ {
		if expect[k] < 5 {
			continue // standard chi-squared validity guard for sparse cells
		}
		d := float64(counts[k]) - expect[k]
		chi2 += d * d / expect[k]
		df++
	}
	if df < records/2 {
		t.Fatalf("only %d usable cells; scramble collapsed the keyspace?", df)
	}
	// 99.9th percentile of chi-squared with df≈100 is ~149; allow headroom.
	if limit := 2 * float64(df); chi2 > limit {
		t.Fatalf("chi-squared %.1f over %d cells exceeds %.1f: key histogram "+
			"does not match the zipfian spec", chi2, df, limit)
	}
	if counts[int(scramble(0)%records)] < ops/10 {
		t.Fatalf("hottest rank drew only %d of %d accesses", counts[scramble(0)%records], ops)
	}
}

// TestScenarioLatestRecency checks the read-latest workload: reads
// concentrate on the most recently inserted keys even as the keyspace grows.
func TestScenarioLatestRecency(t *testing.T) {
	const records = 100
	s, err := NewScenario("d", ScenarioConfig{Records: records, Ops: 20000, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	ops := drainScenario(t, s)[records:]
	count := records
	recent, reads := 0, 0
	for _, op := range ops {
		switch op.Kind {
		case OpPut:
			count++
		case OpGet:
			reads++
			if keyNum(t, op.Key) >= count-10 {
				recent++
			}
		}
	}
	// The zipfian over recency ranks puts ~56% of mass on the newest 10 of
	// 100 keys (H_10/H_100 at θ=0.99); assert well above the uniform 10%.
	if frac := float64(recent) / float64(reads); frac < 0.4 {
		t.Fatalf("only %.1f%% of reads hit the 10 newest keys; read-latest skew missing",
			frac*100)
	}
}

// TestScenarioHotspotShiftBoundary pins the shift semantics at the exact
// instant: with a steady 20µs arrival spacing and a shift at 100µs, ops
// stamped before 100µs use the original mapping and the op stamped exactly
// 100µs is already rotated.
func TestScenarioHotspotShiftBoundary(t *testing.T) {
	const (
		records = 100
		rot     = 37
	)
	shiftAt := sim.Time(100 * sim.Microsecond)
	base := ScenarioConfig{
		Records: records, Ops: 50, Seed: 21,
		Arrival: ArrivalConfig{Rate: 50000}, // exact 20µs spacing
	}
	shifted := base
	shifted.Shifts = HotShifts{{At: shiftAt, Rotate: rot}}
	plain, err := NewScenario("c", base)
	if err != nil {
		t.Fatal(err)
	}
	moved, err := NewScenario("c", shifted)
	if err != nil {
		t.Fatal(err)
	}
	opsP := drainScenario(t, plain)[records:]
	opsM := drainScenario(t, moved)[records:]
	crossed := false
	for i := range opsP {
		if opsP[i].At != opsM[i].At {
			t.Fatalf("op %d: arrival stamps diverge (%v vs %v)", i, opsP[i].At, opsM[i].At)
		}
		want := keyNum(t, opsP[i].Key)
		if opsP[i].At >= shiftAt {
			crossed = true
			want = (want + rot) % records
		}
		if got := keyNum(t, opsM[i].Key); got != want {
			t.Fatalf("op %d at %v: key %d, want %d (shift at %v)",
				i, opsM[i].At, got, want, shiftAt)
		}
	}
	if !crossed {
		t.Fatal("no op arrived at or after the shift instant; test misconfigured")
	}
}
