package workload

import (
	"reflect"
	"strings"
	"testing"

	"bandslim/internal/sim"
)

func TestParseAtFormatAtRoundTrip(t *testing.T) {
	cases := []struct {
		in   string
		want sim.Time
	}{
		{"0us", 0},
		{"0ns", 0},
		{"1ns", sim.Time(sim.Nanosecond)},
		{"20us", sim.Time(20 * sim.Microsecond)},
		{"1500ns", sim.Time(1500 * sim.Nanosecond)},
		{"3ms", sim.Time(3 * sim.Millisecond)},
		{"2s", sim.Time(2 * sim.Second)},
	}
	for _, tc := range cases {
		got, err := parseAt(tc.in)
		if err != nil || got != tc.want {
			t.Errorf("parseAt(%q) = %v, %v; want %v", tc.in, got, err, tc.want)
			continue
		}
		// formatAt is canonical: re-parsing its output is exact.
		back, err := parseAt(formatAt(got))
		if err != nil || back != got {
			t.Errorf("formatAt(%v) = %q does not re-parse exactly", got, formatAt(got))
		}
	}
	for _, bad := range []string{"", "5", "ns", "-1us", "1.5us", "5m", "1e3us",
		"99999999999999999999ns", "9223372036854775807s"} {
		if _, err := parseAt(bad); err == nil {
			t.Errorf("parseAt(%q) accepted", bad)
		}
	}
}

func TestFormatAtCoarsestUnit(t *testing.T) {
	cases := []struct {
		t    sim.Time
		want string
	}{
		{0, "0us"},
		{sim.Time(sim.Nanosecond), "1ns"},
		{sim.Time(sim.Microsecond), "1us"},
		{sim.Time(sim.Millisecond), "1ms"},
		{sim.Time(sim.Second), "1s"},
		{sim.Time(1500 * sim.Microsecond), "1500us"},
	}
	for _, tc := range cases {
		if got := formatAt(tc.t); got != tc.want {
			t.Errorf("formatAt(%v) = %q, want %q", tc.t, got, tc.want)
		}
	}
}

const sampleTrace = `bandslim-trace v1
# comment line
seed 99

put 0us "k1" 128   # trailing comment
get 20us "k1"
scan 40us "k#weird" 7
rmw 60us "\x00bin" 64
del 80us "k1"
`

func TestParseTraceSample(t *testing.T) {
	tr, err := ParseTrace(strings.NewReader(sampleTrace))
	if err != nil {
		t.Fatal(err)
	}
	if tr.Seed != 99 || len(tr.Ops) != 5 {
		t.Fatalf("got seed %d, %d ops", tr.Seed, len(tr.Ops))
	}
	want := []ScenarioOp{
		{Kind: OpPut, At: 0, Key: []byte("k1"), N: 128},
		{Kind: OpGet, At: sim.Time(20 * sim.Microsecond), Key: []byte("k1")},
		{Kind: OpScan, At: sim.Time(40 * sim.Microsecond), Key: []byte("k#weird"), N: 7},
		{Kind: OpRMW, At: sim.Time(60 * sim.Microsecond), Key: []byte("\x00bin"), N: 64},
		{Kind: OpDelete, At: sim.Time(80 * sim.Microsecond), Key: []byte("k1")},
	}
	if !reflect.DeepEqual(tr.Ops, want) {
		t.Fatalf("ops mismatch:\n got %+v\nwant %+v", tr.Ops, want)
	}
}

func TestParseTraceErrors(t *testing.T) {
	cases := map[string]string{
		"empty":             "",
		"missing header":    "seed 1\nput 0us \"k\" 8\n",
		"ops before header": "put 0us \"k\" 8\nbandslim-trace v1\n",
		"wrong version":     "bandslim-trace v2\n",
		"duplicate seed":    "bandslim-trace v1\nseed 1\nseed 2\n",
		"bad seed":          "bandslim-trace v1\nseed banana\n",
		"seed arity":        "bandslim-trace v1\nseed 1 2\n",
		"unknown verb":      "bandslim-trace v1\nfrob 0us \"k\"\n",
		"unquoted key":      "bandslim-trace v1\nget 0us k\n",
		"bad quote":         "bandslim-trace v1\nget 0us \"k\n",
		"missing count":     "bandslim-trace v1\nput 0us \"k\"\n",
		"extra count":       "bandslim-trace v1\nget 0us \"k\" 5\n",
		"bad count":         "bandslim-trace v1\nput 0us \"k\" x\n",
		"zero value":        "bandslim-trace v1\nput 0us \"k\" 0\n",
		"huge value":        "bandslim-trace v1\nput 0us \"k\" 999999999\n",
		"huge scan":         "bandslim-trace v1\nscan 0us \"k\" 99999999\n",
		"empty key":         "bandslim-trace v1\nget 0us \"\"\n",
		"bad time":          "bandslim-trace v1\nget zebra \"k\"\n",
		"time regression":   "bandslim-trace v1\nget 5us \"k\"\nget 1us \"k\"\n",
		"negative scan":     "bandslim-trace v1\nscan 0us \"k\" -3\n",
		"long key": "bandslim-trace v1\nget 0us \"" +
			strings.Repeat("a", maxTraceKeyLen+1) + "\"\n",
	}
	for name, src := range cases {
		if _, err := ParseTrace(strings.NewReader(src)); err == nil {
			t.Errorf("%s: accepted:\n%s", name, src)
		}
	}
}

func TestFormatTraceCanonical(t *testing.T) {
	tr, err := ParseTrace(strings.NewReader(sampleTrace))
	if err != nil {
		t.Fatal(err)
	}
	text := FormatTrace(tr)
	back, err := ParseTrace(strings.NewReader(text))
	if err != nil {
		t.Fatalf("canonical form does not re-parse: %v\n%s", err, text)
	}
	if !reflect.DeepEqual(tr, back) {
		t.Fatalf("canonical round trip altered the trace:\n%s", text)
	}
	if again := FormatTrace(back); again != text {
		t.Fatalf("FormatTrace is not a fixed point:\n%q\nvs\n%q", text, again)
	}
}

func TestTraceRecordedRoundTrip(t *testing.T) {
	// A recorded generator stream must survive the text format exactly.
	s, err := NewScenario("mixed", ScenarioConfig{
		Records: 50, Ops: 300, Seed: 17,
		Arrival: ArrivalConfig{Rate: 50000, Jitter: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	tr := &Trace{Seed: 17}
	for {
		op, ok := s.Next()
		if !ok {
			break
		}
		tr.Append(op)
	}
	if err := tr.Validate(); err != nil {
		t.Fatalf("recorded trace invalid: %v", err)
	}
	back, err := ParseTrace(strings.NewReader(FormatTrace(tr)))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(tr, back) {
		t.Fatal("recorded trace altered by text round trip")
	}
}

func TestReplayScenario(t *testing.T) {
	tr := &Trace{Seed: 3}
	tr.Append(ScenarioOp{Kind: OpPut, Key: []byte("a"), N: 8})
	tr.Append(ScenarioOp{Kind: OpGet, At: sim.Time(sim.Microsecond), Key: []byte("a")})
	r := NewReplay(tr)
	if r.Name() != "replay" || r.Remaining() != 2 {
		t.Fatalf("fresh replay: name %q, remaining %d", r.Name(), r.Remaining())
	}
	op, ok := r.Next()
	if !ok || op.Kind != OpPut || string(op.Key) != "a" {
		t.Fatalf("first op = %+v, %v", op, ok)
	}
	if r.Remaining() != 1 {
		t.Fatalf("Remaining() = %d after one op", r.Remaining())
	}
	if op, ok = r.Next(); !ok || op.Kind != OpGet {
		t.Fatalf("second op = %+v, %v", op, ok)
	}
	if _, ok = r.Next(); ok || r.Remaining() != 0 {
		t.Fatal("replay did not exhaust")
	}
}

func TestTraceValidateKinds(t *testing.T) {
	tr := &Trace{}
	tr.Append(ScenarioOp{Kind: OpKind(250), Key: []byte("k")})
	if err := tr.Validate(); err == nil {
		t.Error("unknown kind accepted")
	}
	tr = &Trace{}
	tr.Append(ScenarioOp{Kind: OpGet, Key: []byte("k"), N: 1})
	if err := tr.Validate(); err == nil {
		t.Error("get with a count accepted")
	}
}
