package workload

import (
	"reflect"
	"strings"
	"testing"
)

// FuzzTraceParse feeds arbitrary text to the trace parser. Invariants: the
// parser never panics, every accepted trace validates, and the canonical
// FormatTrace rendering round-trips to an identical trace and is a fixed
// point.
func FuzzTraceParse(f *testing.F) {
	f.Add("bandslim-trace v1\nseed 42\nput 0us \"k\" 128\nget 20us \"k\"\n")
	f.Add("bandslim-trace v1\nscan 1500ns \"y00000001\" 7\nrmw 2us \"y00000001\" 64\n")
	f.Add("bandslim-trace v1\n# comment\ndel 0us \"a#b\"\n")
	f.Add("bandslim-trace v1\nseed 0xdead\nput 1s `raw` 1\n")
	f.Add("bandslim-trace v1\nget 0us \"\\x00\\xff\"\n")
	f.Add("seed 1\nput 0us \"k\" 8\n")
	f.Fuzz(func(t *testing.T, text string) {
		tr, err := ParseTrace(strings.NewReader(text))
		if err != nil {
			return
		}
		if err := tr.Validate(); err != nil {
			t.Fatalf("accepted trace fails Validate: %v", err)
		}
		canon := FormatTrace(tr)
		tr2, err := ParseTrace(strings.NewReader(canon))
		if err != nil {
			t.Fatalf("canonical form rejected: %v\n%s", err, canon)
		}
		if !reflect.DeepEqual(tr, tr2) {
			t.Fatalf("round trip diverged:\n%+v\n%+v\ncanonical:\n%s", tr, tr2, canon)
		}
		if got := FormatTrace(tr2); got != canon {
			t.Fatalf("FormatTrace not a fixed point:\n%q\n%q", canon, got)
		}
	})
}
