package workload

import (
	"fmt"
	"io"
	"strconv"
	"strings"

	"bandslim/internal/sim"
)

// Deterministic trace format — versioned, line-oriented, hand-writable:
//
//	bandslim-trace v1
//	# anything after '#' is a comment
//	seed 42
//	put 0us "y00000000" 128
//	get 1250ns "y00000007"
//	scan 2us "y00000010" 17
//	rmw 3us "y00000003" 64
//	del 4us "k"
//
// The first directive must be the version line. An optional `seed N` line
// (at most one) carries the value-content seed: value bytes for put/rmw ops
// are regenerated from it in op order, so a replayed trace writes the exact
// bytes of the recorded run. Each op line is `<verb> <at> <quoted-key> [n]`:
// at is an integer simulated instant with an ns/us/ms/s suffix (arrival
// instants never decrease), the key is a Go-quoted string, and n is the
// value size (put/rmw) or entry count (scan). get/del take no n.
//
// Determinism contract: FormatTrace is canonical — parsing its output
// reproduces the Trace exactly, and re-formatting is byte-identical. Any
// generator run recorded through Trace.Append replays bit-identically:
// same ops, same arrival stamps, same value bytes.

// TraceVersion is the format version this package reads and writes.
const TraceVersion = 1

// traceHeader is the required first directive of a trace file.
const traceHeader = "bandslim-trace v1"

// Limits keeping hostile hand-written traces from ballooning a replay.
const (
	// maxTraceKeyLen bounds one key's byte length.
	maxTraceKeyLen = 4096
	// maxTraceValue bounds a put/rmw value size.
	maxTraceValue = 16 << 20
	// maxTraceScan bounds one scan's entry count.
	maxTraceScan = 1 << 20
)

// Trace is a parsed (or recorded) deterministic op stream.
type Trace struct {
	// Seed regenerates value contents on replay.
	Seed uint64
	// Ops is the stream in issue order.
	Ops []ScenarioOp
}

// Append records one scenario op, copying its key.
func (tr *Trace) Append(op ScenarioOp) {
	op.Key = append([]byte(nil), op.Key...)
	tr.Ops = append(tr.Ops, op)
}

// Validate checks the trace's structural invariants: known op kinds,
// non-empty bounded keys, sane sizes, and non-decreasing arrival stamps.
func (tr *Trace) Validate() error {
	prev := sim.Time(0)
	for i, op := range tr.Ops {
		if int(op.Kind) >= int(opKinds) {
			return fmt.Errorf("workload: trace op %d: unknown kind %d", i, op.Kind)
		}
		if len(op.Key) == 0 || len(op.Key) > maxTraceKeyLen {
			return fmt.Errorf("workload: trace op %d: key length %d outside [1, %d]",
				i, len(op.Key), maxTraceKeyLen)
		}
		if op.At < prev {
			return fmt.Errorf("workload: trace op %d: arrival %v before previous %v",
				i, op.At, prev)
		}
		prev = op.At
		switch op.Kind {
		case OpPut, OpRMW:
			if op.N < 1 || op.N > maxTraceValue {
				return fmt.Errorf("workload: trace op %d: value size %d outside [1, %d]",
					i, op.N, maxTraceValue)
			}
		case OpScan:
			if op.N < 1 || op.N > maxTraceScan {
				return fmt.Errorf("workload: trace op %d: scan count %d outside [1, %d]",
					i, op.N, maxTraceScan)
			}
		default:
			if op.N != 0 {
				return fmt.Errorf("workload: trace op %d: %v takes no count, got %d",
					i, op.Kind, op.N)
			}
		}
	}
	return nil
}

// atUnits render arrival instants in the coarsest exact unit; longest
// suffixes first so "ms" is never read as a malformed "s".
var atUnits = []struct {
	suffix string
	dur    sim.Duration
}{
	{"ns", sim.Nanosecond},
	{"us", sim.Microsecond},
	{"ms", sim.Millisecond},
	{"s", sim.Second},
}

// parseAt parses an integer simulated instant like "10us" or "1500ns".
// Unlike the fault-plan parser this one is integer-only, so formatting and
// re-parsing is exact for every representable instant.
func parseAt(s string) (sim.Time, error) {
	for _, u := range atUnits {
		num, ok := strings.CutSuffix(s, u.suffix)
		if !ok || num == "" {
			continue
		}
		v, err := strconv.ParseInt(num, 10, 64)
		if err != nil {
			continue // "5m"+"s" would strip the wrong suffix; keep looking
		}
		if v < 0 {
			return 0, fmt.Errorf("negative time %q", s)
		}
		if v > int64(1)<<62/int64(u.dur) {
			return 0, fmt.Errorf("time %q too large", s)
		}
		return sim.Time(v * int64(u.dur)), nil
	}
	return 0, fmt.Errorf("bad time %q (want an integer with ns/us/ms/s suffix)", s)
}

// formatAt renders t in the coarsest unit that divides it exactly.
func formatAt(t sim.Time) string {
	if t == 0 {
		return "0us"
	}
	for i := len(atUnits) - 1; i >= 0; i-- {
		u := atUnits[i]
		if t%sim.Time(u.dur) == 0 {
			return fmt.Sprintf("%d%s", int64(t)/int64(u.dur), u.suffix)
		}
	}
	return fmt.Sprintf("%dns", int64(t))
}

// splitTraceFields tokenizes one op line: whitespace-separated fields, with
// Go-quoted strings kept intact (quotes included) as single fields. A '#'
// outside quotes starts a comment; inside a quoted key it is data, so keys
// containing '#' survive the canonical round trip.
func splitTraceFields(line string) ([]string, error) {
	var fields []string
	for i := 0; i < len(line); {
		switch c := line[i]; {
		case c == ' ' || c == '\t' || c == '\r':
			i++
		case c == '#':
			return fields, nil
		case c == '"' || c == '`':
			q, err := strconv.QuotedPrefix(line[i:])
			if err != nil {
				return nil, fmt.Errorf("bad quoted string")
			}
			fields = append(fields, q)
			i += len(q)
		default:
			j := i
			for j < len(line) && line[j] != ' ' && line[j] != '\t' &&
				line[j] != '\r' && line[j] != '#' {
				j++
			}
			fields = append(fields, line[i:j])
			i = j
		}
	}
	return fields, nil
}

// ParseTrace reads the trace text format. Accepted traces always Validate.
func ParseTrace(r io.Reader) (*Trace, error) {
	raw, err := io.ReadAll(r)
	if err != nil {
		return nil, err
	}
	tr := &Trace{}
	sawHeader, sawSeed := false, false
	for lineno, line := range strings.Split(string(raw), "\n") {
		fields, err := splitTraceFields(line)
		if err != nil {
			return nil, fmt.Errorf("workload: trace line %d: %v", lineno+1, err)
		}
		if len(fields) == 0 {
			continue
		}
		if !sawHeader {
			if len(fields) != 2 || fields[0]+" "+fields[1] != traceHeader {
				return nil, fmt.Errorf("workload: trace line %d: missing header %q",
					lineno+1, traceHeader)
			}
			sawHeader = true
			continue
		}
		if fields[0] == "seed" {
			if sawSeed {
				return nil, fmt.Errorf("workload: trace line %d: duplicate seed", lineno+1)
			}
			if len(fields) != 2 {
				return nil, fmt.Errorf("workload: trace line %d: seed takes one value", lineno+1)
			}
			v, err := strconv.ParseUint(fields[1], 0, 64)
			if err != nil {
				return nil, fmt.Errorf("workload: trace line %d: bad seed %q", lineno+1, fields[1])
			}
			tr.Seed = v
			sawSeed = true
			continue
		}
		op, err := parseTraceOp(fields)
		if err != nil {
			return nil, fmt.Errorf("workload: trace line %d: %w", lineno+1, err)
		}
		tr.Ops = append(tr.Ops, op)
	}
	if !sawHeader {
		return nil, fmt.Errorf("workload: trace missing header %q", traceHeader)
	}
	if err := tr.Validate(); err != nil {
		return nil, err
	}
	return tr, nil
}

// parseTraceOp decodes one `<verb> <at> <quoted-key> [n]` line.
func parseTraceOp(fields []string) (ScenarioOp, error) {
	var op ScenarioOp
	kind, ok := ParseOpKind(fields[0])
	if !ok {
		return op, fmt.Errorf("unknown op %q", fields[0])
	}
	op.Kind = kind
	wantN := kind == OpPut || kind == OpRMW || kind == OpScan
	if want := 3 + b2i(wantN); len(fields) != want {
		return op, fmt.Errorf("%s takes %d fields, got %d", fields[0], want, len(fields))
	}
	at, err := parseAt(fields[1])
	if err != nil {
		return op, err
	}
	op.At = at
	key, err := strconv.Unquote(fields[2])
	if err != nil {
		return op, fmt.Errorf("key must be a quoted string, got %s", fields[2])
	}
	op.Key = []byte(key)
	if wantN {
		n, err := strconv.Atoi(fields[3])
		if err != nil {
			return op, fmt.Errorf("bad count %q", fields[3])
		}
		op.N = n
	}
	return op, nil
}

func b2i(b bool) int {
	if b {
		return 1
	}
	return 0
}

// FormatTrace renders a trace in canonical text form: ParseTrace of the
// result reproduces the trace exactly, and formatting is a fixed point.
func FormatTrace(tr *Trace) string {
	var b strings.Builder
	b.WriteString(traceHeader)
	b.WriteByte('\n')
	fmt.Fprintf(&b, "seed %d\n", tr.Seed)
	for _, op := range tr.Ops {
		b.WriteString(op.Kind.String())
		b.WriteByte(' ')
		b.WriteString(formatAt(op.At))
		b.WriteByte(' ')
		b.WriteString(strconv.Quote(string(op.Key)))
		if op.Kind == OpPut || op.Kind == OpRMW || op.Kind == OpScan {
			fmt.Fprintf(&b, " %d", op.N)
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// WriteTrace writes the canonical form to w.
func WriteTrace(w io.Writer, tr *Trace) error {
	_, err := io.WriteString(w, FormatTrace(tr))
	return err
}

// Replay adapts a parsed trace to the Scenario interface, so a recorded (or
// hand-written) stream drives a stack through exactly the machinery a live
// generator does.
type Replay struct {
	tr *Trace
	i  int
}

// NewReplay returns a Scenario that re-issues tr's ops in order.
func NewReplay(tr *Trace) *Replay { return &Replay{tr: tr} }

// Name implements Scenario.
func (r *Replay) Name() string { return "replay" }

// Remaining implements Scenario.
func (r *Replay) Remaining() int { return len(r.tr.Ops) - r.i }

// Next implements Scenario.
func (r *Replay) Next() (ScenarioOp, bool) {
	if r.i >= len(r.tr.Ops) {
		return ScenarioOp{}, false
	}
	op := r.tr.Ops[r.i]
	r.i++
	return op, true
}
