package workload

import (
	"fmt"

	"bandslim/internal/sim"
)

// The scenario subsystem generalizes the write-only paper workloads into
// full request streams: reads, updates, inserts, scans, read-modify-writes,
// and deletes, each stamped with an open-loop arrival instant. A Scenario is
// a seeded, deterministic op-stream generator; the same configuration and
// seed always produce the identical stream, so any run can be captured to a
// trace (tracefmt.go) and replayed bit-identically.

// OpKind classifies one scenario operation.
type OpKind uint8

const (
	// OpPut writes a value of N bytes to Key (load insert or update).
	OpPut OpKind = iota
	// OpGet reads Key.
	OpGet
	// OpDelete removes Key.
	OpDelete
	// OpScan iterates N pairs in key order starting at Key.
	OpScan
	// OpRMW reads Key, then writes a fresh N-byte value back to it.
	OpRMW
	opKinds // count sentinel
)

// opKindNames are the trace-format verbs, indexed by OpKind.
var opKindNames = [opKinds]string{"put", "get", "del", "scan", "rmw"}

// String returns the trace-format verb for k.
func (k OpKind) String() string {
	if int(k) < len(opKindNames) {
		return opKindNames[k]
	}
	return fmt.Sprintf("OpKind(%d)", int(k))
}

// ParseOpKind maps a trace-format verb back to its kind.
func ParseOpKind(s string) (OpKind, bool) {
	for k, name := range opKindNames {
		if s == name {
			return OpKind(k), true
		}
	}
	return 0, false
}

// ScenarioOp is one operation of a scenario stream.
type ScenarioOp struct {
	Kind OpKind
	// At is the op's open-loop arrival instant (0 when unpaced).
	At sim.Time
	// Key is the primary key (scan start key for OpScan).
	Key []byte
	// N is the value size for OpPut/OpRMW and the entry count for OpScan;
	// 0 for OpGet/OpDelete.
	N int
}

// Scenario produces a finite, deterministic operation stream: a load phase
// that builds the initial keyspace followed by the run-phase mix.
type Scenario interface {
	// Next returns the next operation; ok is false when exhausted. The Key
	// slice is owned by the caller.
	Next() (op ScenarioOp, ok bool)
	// Remaining reports how many operations are left (load + run).
	Remaining() int
	// Name identifies the scenario in reports and trace headers.
	Name() string
}

// ScenarioConfig shapes a YCSB-style scenario.
type ScenarioConfig struct {
	// Records is the initial keyspace size, inserted by the load phase.
	Records int
	// Ops is the number of run-phase operations after the load.
	Ops int
	// Seed drives every random choice the scenario makes.
	Seed uint64
	// Theta is the Zipfian exponent for skewed key choice (0 = 0.99, the
	// YCSB default operating point).
	Theta float64
	// ValueMin and ValueMax bound the uniform value-size draw
	// (0, 0 = 64..1024 bytes).
	ValueMin, ValueMax int
	// ScanMax caps scan lengths, drawn uniformly from [1, ScanMax]
	// (0 = 64).
	ScanMax int
	// Arrival paces the run phase (the load phase is always unpaced).
	Arrival ArrivalConfig
	// Shifts re-seat the zipfian head mid-run, keyed on arrival instants.
	Shifts HotShifts
}

// withDefaults fills the zero-value knobs.
func (c ScenarioConfig) withDefaults() ScenarioConfig {
	if c.Theta == 0 {
		c.Theta = 0.99
	}
	if c.ValueMin == 0 && c.ValueMax == 0 {
		c.ValueMin, c.ValueMax = 64, 1024
	}
	if c.ScanMax == 0 {
		c.ScanMax = 64
	}
	return c
}

// Validate checks the configuration's invariants.
func (c ScenarioConfig) Validate() error {
	c = c.withDefaults()
	if c.Records < 1 {
		return fmt.Errorf("workload: scenario needs Records >= 1, got %d", c.Records)
	}
	if c.Ops < 0 {
		return fmt.Errorf("workload: negative Ops %d", c.Ops)
	}
	if c.ValueMin < 1 || c.ValueMax < c.ValueMin {
		return fmt.Errorf("workload: need 1 <= ValueMin <= ValueMax, got %d..%d",
			c.ValueMin, c.ValueMax)
	}
	if c.ScanMax < 1 {
		return fmt.Errorf("workload: ScanMax must be >= 1, got %d", c.ScanMax)
	}
	if err := c.Arrival.Validate(); err != nil {
		return err
	}
	return c.Shifts.Validate()
}

// opClass is a run-phase operation class with its share of the mix.
type opClass struct {
	kind   OpKind
	share  float64
	insert bool // key is a fresh insert, not a skewed existing-key choice
	latest bool // skew over recency ranks (read-latest) instead of scrambled
}

// mixes defines the YCSB core workloads plus the "mixed" harness scenario.
// Shares within a scenario sum to 1.
var mixes = map[string][]opClass{
	// A: update-heavy — 50% read / 50% update, zipfian.
	"ycsb-a": {{kind: OpGet, share: 0.5}, {kind: OpPut, share: 0.5}},
	// B: read-mostly — 95% read / 5% update, zipfian.
	"ycsb-b": {{kind: OpGet, share: 0.95}, {kind: OpPut, share: 0.05}},
	// C: read-only, zipfian.
	"ycsb-c": {{kind: OpGet, share: 1.0}},
	// D: read-latest — 95% read over recency ranks / 5% insert; the
	// keyspace grows insert-ordered and the newest keys stay hottest.
	"ycsb-d": {
		{kind: OpGet, share: 0.95, latest: true},
		{kind: OpPut, share: 0.05, insert: true},
	},
	// E: scan-heavy — 95% short scans / 5% insert.
	"ycsb-e": {
		{kind: OpScan, share: 0.95},
		{kind: OpPut, share: 0.05, insert: true},
	},
	// F: read-modify-write — 50% read / 50% RMW, zipfian.
	"ycsb-f": {{kind: OpGet, share: 0.5}, {kind: OpRMW, share: 0.5}},
	// mixed: every op kind in one stream, including deletes — the scenario
	// the differential and replay harnesses lean on for full coverage.
	"mixed": {
		{kind: OpGet, share: 0.30},
		{kind: OpPut, share: 0.30},
		{kind: OpPut, share: 0.10, insert: true},
		{kind: OpDelete, share: 0.10},
		{kind: OpScan, share: 0.10},
		{kind: OpRMW, share: 0.10},
	},
}

// ScenarioNames lists the buildable scenario names in canonical order.
func ScenarioNames() []string {
	return []string{"ycsb-a", "ycsb-b", "ycsb-c", "ycsb-d", "ycsb-e", "ycsb-f", "mixed"}
}

// YCSB is a seeded YCSB-style scenario: a load phase inserting Records keys
// followed by Ops run-phase operations drawn from the workload's mix.
type YCSB struct {
	name    string
	cfg     ScenarioConfig
	classes []opClass
	cum     []float64
	rng     *sim.RNG
	zipf    *Zipfian
	arrival Arrival
	count   int // current keyspace size (grows with inserts)
	loaded  int // load-phase progress
	done    int // run-phase progress
}

// NewScenario builds the named scenario ("ycsb-a".."ycsb-f" or "mixed"; the
// bare letters "a".."f" are accepted as shorthand).
func NewScenario(name string, cfg ScenarioConfig) (*YCSB, error) {
	canon := name
	if len(name) == 1 && name[0] >= 'a' && name[0] <= 'f' {
		canon = "ycsb-" + name
	}
	classes, ok := mixes[canon]
	if !ok {
		return nil, fmt.Errorf("workload: unknown scenario %q (want %v)", name, ScenarioNames())
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	cfg = cfg.withDefaults()
	cum := make([]float64, len(classes))
	sum := 0.0
	for i, c := range classes {
		sum += c.share
		cum[i] = sum
	}
	rng := sim.NewRNG(cfg.Seed)
	zipf, err := NewZipfian(cfg.Records, cfg.Theta, rng.Split().Uint64())
	if err != nil {
		return nil, err
	}
	arrival, err := NewArrival(cfg.Arrival, rng.Split().Uint64())
	if err != nil {
		return nil, err
	}
	return &YCSB{
		name:    canon,
		cfg:     cfg,
		classes: classes,
		cum:     cum,
		rng:     rng,
		zipf:    zipf,
		arrival: arrival,
	}, nil
}

// Name implements Scenario.
func (y *YCSB) Name() string { return y.name }

// Remaining implements Scenario.
func (y *YCSB) Remaining() int {
	return (y.cfg.Records - y.loaded) + (y.cfg.Ops - y.done)
}

// scenarioKey renders key number n in the scenario keyspace.
func scenarioKey(n int) []byte {
	return []byte(fmt.Sprintf("y%08d", n))
}

// scramble spreads zipfian ranks over the keyspace (SplitMix64 finalizer),
// so the hot head is not a contiguous key range. Collisions merely merge
// rank probabilities, as in YCSB's hashed key chooser.
func scramble(x uint64) uint64 {
	x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9
	x = (x ^ (x >> 27)) * 0x94D049BB133111EB
	return x ^ (x >> 31)
}

// chooseKey picks an existing key number for a skewed access arriving at
// instant at.
func (y *YCSB) chooseKey(c opClass, at sim.Time) int {
	rank := y.zipf.Next()
	if c.latest {
		// Recency rank: 0 is the most recently inserted key.
		if rank >= y.count {
			rank = y.count - 1
		}
		return y.count - 1 - rank
	}
	n := int(scramble(uint64(rank)) % uint64(y.cfg.Records))
	if rot := y.cfg.Shifts.Offset(at); rot != 0 {
		n = (n + rot) % y.cfg.Records
	}
	return n
}

// valueSize draws a run-phase value size.
func (y *YCSB) valueSize() int {
	return y.cfg.ValueMin + y.rng.Intn(y.cfg.ValueMax-y.cfg.ValueMin+1)
}

// Next implements Scenario.
func (y *YCSB) Next() (ScenarioOp, bool) {
	if y.loaded < y.cfg.Records {
		n := y.loaded
		y.loaded++
		y.count++
		return ScenarioOp{Kind: OpPut, Key: scenarioKey(n), N: y.valueSize()}, true
	}
	if y.done >= y.cfg.Ops {
		return ScenarioOp{}, false
	}
	y.done++
	at := y.arrival.Next()
	x := y.rng.Float64()
	class := y.classes[len(y.classes)-1]
	for i, c := range y.cum {
		if x < c {
			class = y.classes[i]
			break
		}
	}
	op := ScenarioOp{Kind: class.kind, At: at}
	switch {
	case class.insert:
		op.Key = scenarioKey(y.count)
		op.N = y.valueSize()
		y.count++
	case class.kind == OpScan:
		op.Key = scenarioKey(y.chooseKey(class, at))
		op.N = 1 + y.rng.Intn(y.cfg.ScanMax)
	case class.kind == OpPut || class.kind == OpRMW:
		op.Key = scenarioKey(y.chooseKey(class, at))
		op.N = y.valueSize()
	default: // get, delete
		op.Key = scenarioKey(y.chooseKey(class, at))
	}
	return op, true
}
