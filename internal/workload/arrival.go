package workload

import (
	"fmt"
	"math"

	"bandslim/internal/sim"
)

// Arrival produces the simulated arrival instants of successive operations.
// Arrivals are open-loop: the process stamps each op with the moment it
// would have been issued by an external client, independent of how fast the
// device under test drains them. Scenario behavior that keys off time — the
// hotspot shifts below — triggers on these stamps, so a recorded trace
// replays the exact same behavior no matter what stack it is driven against.
//
// Implementations are deterministic: the stream of instants is a pure
// function of the configuration and seed.
type Arrival interface {
	// Next returns the arrival instant of the next operation. Instants are
	// non-decreasing.
	Next() sim.Time
}

// asap is the zero arrival process: every op arrives at t=0 (no pacing, no
// time-keyed behavior).
type asap struct{}

func (asap) Next() sim.Time { return 0 }

// ArrivalConfig shapes an open-loop arrival process. The zero value means
// "as fast as possible": every op is stamped t=0.
type ArrivalConfig struct {
	// Rate is the base arrival rate in operations per simulated second.
	// 0 disables pacing (all stamps are 0); otherwise it must be positive.
	Rate float64

	// DiurnalAmp and DiurnalPeriod superimpose a load curve on the base
	// rate: rate(t) = Rate · (1 + DiurnalAmp·sin(2πt/DiurnalPeriod)).
	// Amp must be in [0, 1) so the instantaneous rate stays positive;
	// Period must be positive when Amp > 0.
	DiurnalAmp    float64
	DiurnalPeriod sim.Duration

	// BurstFactor, BurstEvery, and BurstLen overlay periodic bursts: within
	// each BurstEvery window, the first BurstLen of it runs at rate ×
	// BurstFactor. Factor must be ≥ 1 and both durations positive (with
	// BurstLen ≤ BurstEvery) when bursts are enabled (Factor > 0).
	BurstFactor float64
	BurstEvery  sim.Duration
	BurstLen    sim.Duration

	// Jitter, when true, draws exponential interarrival gaps (a Poisson
	// process at the modulated rate) from the seeded RNG instead of fixed
	// 1/rate(t) spacing.
	Jitter bool
}

// Validate checks the configuration's invariants.
func (c ArrivalConfig) Validate() error {
	if c.Rate == 0 {
		if c.DiurnalAmp != 0 || c.BurstFactor != 0 || c.Jitter {
			return fmt.Errorf("workload: arrival modulation needs Rate > 0")
		}
		return nil
	}
	if c.Rate < 0 || math.IsNaN(c.Rate) || math.IsInf(c.Rate, 0) {
		return fmt.Errorf("workload: arrival rate must be positive and finite, got %v", c.Rate)
	}
	if c.DiurnalAmp < 0 || c.DiurnalAmp >= 1 || math.IsNaN(c.DiurnalAmp) {
		return fmt.Errorf("workload: diurnal amplitude must be in [0, 1), got %v", c.DiurnalAmp)
	}
	if c.DiurnalAmp > 0 && c.DiurnalPeriod <= 0 {
		return fmt.Errorf("workload: diurnal amplitude needs a positive period")
	}
	if c.BurstFactor != 0 {
		if c.BurstFactor < 1 || math.IsNaN(c.BurstFactor) || math.IsInf(c.BurstFactor, 0) {
			return fmt.Errorf("workload: burst factor must be >= 1, got %v", c.BurstFactor)
		}
		if c.BurstEvery <= 0 || c.BurstLen <= 0 || c.BurstLen > c.BurstEvery {
			return fmt.Errorf("workload: bursts need 0 < BurstLen <= BurstEvery")
		}
	}
	return nil
}

// NewArrival builds the arrival process described by cfg. The zero config
// returns the unpaced process (all stamps 0).
func NewArrival(cfg ArrivalConfig, seed uint64) (Arrival, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if cfg.Rate == 0 {
		return asap{}, nil
	}
	return &openLoop{cfg: cfg, rng: sim.NewRNG(seed)}, nil
}

// openLoop advances a private timeline: each op arrives one (possibly
// jittered) interarrival gap after the previous one, with the gap computed
// from the rate in effect at the previous instant.
type openLoop struct {
	cfg ArrivalConfig
	rng *sim.RNG
	now sim.Time
}

// rateAt evaluates the modulated rate at instant t.
func (a *openLoop) rateAt(t sim.Time) float64 {
	r := a.cfg.Rate
	if a.cfg.DiurnalAmp > 0 {
		phase := 2 * math.Pi * float64(t) / float64(a.cfg.DiurnalPeriod)
		r *= 1 + a.cfg.DiurnalAmp*math.Sin(phase)
	}
	if a.cfg.BurstFactor > 0 {
		if sim.Duration(t)%a.cfg.BurstEvery < a.cfg.BurstLen {
			r *= a.cfg.BurstFactor
		}
	}
	return r
}

// Next implements Arrival.
func (a *openLoop) Next() sim.Time {
	gap := 1 / a.rateAt(a.now) // seconds
	if a.cfg.Jitter {
		// Exponential interarrival: -ln(1-u)/rate, u in [0, 1).
		gap *= -math.Log(1 - a.rng.Float64())
	}
	ns := gap * float64(sim.Second)
	if ns >= float64(int64(1)<<62) {
		ns = float64(int64(1) << 62)
	}
	a.now = a.now.Add(sim.Duration(ns))
	return a.now
}

// HotShift re-seats the hot head of a skewed key-choice distribution at a
// simulated instant: from At onward, every drawn key index is rotated by
// Rotate positions through the initial keyspace. Offsets are absolute, not
// cumulative — the shift in effect at time t is the last one with At ≤ t.
type HotShift struct {
	At     sim.Time
	Rotate int
}

// HotShifts is a schedule of hotspot shifts ordered by At.
type HotShifts []HotShift

// Validate checks ordering and bounds.
func (hs HotShifts) Validate() error {
	for i, s := range hs {
		if s.Rotate < 0 {
			return fmt.Errorf("workload: shift %d: negative rotation %d", i, s.Rotate)
		}
		if i > 0 && hs[i-1].At >= s.At {
			return fmt.Errorf("workload: shift %d: At %v not after previous %v", i, s.At, hs[i-1].At)
		}
	}
	return nil
}

// Offset reports the rotation in effect at instant at: the Rotate of the
// last shift whose At ≤ at, or 0 before the first shift. An op arriving
// exactly at a shift's At already sees the new mapping.
func (hs HotShifts) Offset(at sim.Time) int {
	off := 0
	for _, s := range hs {
		if s.At > at {
			break
		}
		off = s.Rotate
	}
	return off
}
