package workload

import (
	"testing"

	"bandslim/internal/sim"
)

func TestArrivalConfigValidate(t *testing.T) {
	ms := sim.Millisecond
	cases := []struct {
		name string
		cfg  ArrivalConfig
		ok   bool
	}{
		{"zero", ArrivalConfig{}, true},
		{"plain rate", ArrivalConfig{Rate: 1000}, true},
		{"negative rate", ArrivalConfig{Rate: -1}, false},
		{"modulation without rate", ArrivalConfig{DiurnalAmp: 0.5, DiurnalPeriod: ms}, false},
		{"jitter without rate", ArrivalConfig{Jitter: true}, false},
		{"diurnal", ArrivalConfig{Rate: 1000, DiurnalAmp: 0.5, DiurnalPeriod: ms}, true},
		{"amp too large", ArrivalConfig{Rate: 1000, DiurnalAmp: 1, DiurnalPeriod: ms}, false},
		{"amp negative", ArrivalConfig{Rate: 1000, DiurnalAmp: -0.1, DiurnalPeriod: ms}, false},
		{"amp without period", ArrivalConfig{Rate: 1000, DiurnalAmp: 0.5}, false},
		{"bursts", ArrivalConfig{Rate: 1000, BurstFactor: 4, BurstEvery: ms, BurstLen: ms / 8}, true},
		{"burst factor < 1", ArrivalConfig{Rate: 1000, BurstFactor: 0.5, BurstEvery: ms, BurstLen: ms / 8}, false},
		{"burst len > every", ArrivalConfig{Rate: 1000, BurstFactor: 2, BurstEvery: ms, BurstLen: 2 * ms}, false},
		{"burst missing windows", ArrivalConfig{Rate: 1000, BurstFactor: 2}, false},
	}
	for _, tc := range cases {
		if err := tc.cfg.Validate(); (err == nil) != tc.ok {
			t.Errorf("%s: Validate() = %v, want ok=%v", tc.name, err, tc.ok)
		}
	}
}

// arrivalStamps draws n instants from a fresh process.
func arrivalStamps(t *testing.T, cfg ArrivalConfig, seed uint64, n int) []sim.Time {
	t.Helper()
	a, err := NewArrival(cfg, seed)
	if err != nil {
		t.Fatalf("NewArrival: %v", err)
	}
	out := make([]sim.Time, n)
	for i := range out {
		out[i] = a.Next()
	}
	return out
}

func TestArrivalMonotoneAndDeterministic(t *testing.T) {
	ms := sim.Millisecond
	cfgs := map[string]ArrivalConfig{
		"unpaced": {},
		"steady":  {Rate: 50000},
		"diurnal": {Rate: 50000, DiurnalAmp: 0.8, DiurnalPeriod: 4 * ms},
		"bursty":  {Rate: 50000, BurstFactor: 8, BurstEvery: ms, BurstLen: ms / 8},
		"jittered": {Rate: 50000, Jitter: true,
			DiurnalAmp: 0.5, DiurnalPeriod: 4 * ms},
	}
	for name, cfg := range cfgs {
		a := arrivalStamps(t, cfg, 9, 2000)
		b := arrivalStamps(t, cfg, 9, 2000)
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("%s: stamp %d differs across identically seeded runs: %v vs %v",
					name, i, a[i], b[i])
			}
			if i > 0 && a[i] < a[i-1] {
				t.Fatalf("%s: stamp %d = %v before predecessor %v", name, i, a[i], a[i-1])
			}
		}
	}
}

func TestArrivalSteadySpacing(t *testing.T) {
	// 50k ops/s = one op per 20µs, exactly.
	stamps := arrivalStamps(t, ArrivalConfig{Rate: 50000}, 1, 100)
	for i, at := range stamps {
		want := sim.Time(0).Add(sim.Duration(i+1) * 20 * sim.Microsecond)
		if at != want {
			t.Fatalf("stamp %d = %v, want %v", i, at, want)
		}
	}
}

func TestArrivalBurstDensity(t *testing.T) {
	// With ×8 bursts over the first 1/8 of each window, the burst window
	// should hold far more arrivals per unit time than the tail.
	ms := sim.Millisecond
	cfg := ArrivalConfig{Rate: 50000, BurstFactor: 8, BurstEvery: ms, BurstLen: ms / 8}
	stamps := arrivalStamps(t, cfg, 1, 4000)
	inBurst, outBurst := 0, 0
	for _, at := range stamps {
		if sim.Duration(at)%cfg.BurstEvery < cfg.BurstLen {
			inBurst++
		} else {
			outBurst++
		}
	}
	// The burst region is 1/8 of the time at 8× rate: it should carry about
	// half the ops, and certainly far more than its 1/8 time share.
	if inBurst < outBurst/2 {
		t.Fatalf("burst windows carried %d of %d arrivals; want a dense burst head",
			inBurst, inBurst+outBurst)
	}
}

func TestArrivalJitterVaries(t *testing.T) {
	stamps := arrivalStamps(t, ArrivalConfig{Rate: 50000, Jitter: true}, 3, 200)
	gaps := map[sim.Duration]bool{}
	for i := 1; i < len(stamps); i++ {
		gaps[stamps[i].Sub(stamps[i-1])] = true
	}
	if len(gaps) < 10 {
		t.Fatalf("jittered process produced only %d distinct gaps", len(gaps))
	}
}

func TestHotShiftsValidate(t *testing.T) {
	us := sim.Microsecond
	cases := []struct {
		name string
		hs   HotShifts
		ok   bool
	}{
		{"empty", nil, true},
		{"single", HotShifts{{At: sim.Time(us), Rotate: 5}}, true},
		{"ascending", HotShifts{{At: sim.Time(us), Rotate: 5}, {At: sim.Time(2 * us), Rotate: 0}}, true},
		{"negative rotate", HotShifts{{At: sim.Time(us), Rotate: -1}}, false},
		{"duplicate at", HotShifts{{At: sim.Time(us), Rotate: 1}, {At: sim.Time(us), Rotate: 2}}, false},
		{"descending", HotShifts{{At: sim.Time(2 * us), Rotate: 1}, {At: sim.Time(us), Rotate: 2}}, false},
	}
	for _, tc := range cases {
		if err := tc.hs.Validate(); (err == nil) != tc.ok {
			t.Errorf("%s: Validate() = %v, want ok=%v", tc.name, err, tc.ok)
		}
	}
}

func TestHotShiftsOffsetBoundaries(t *testing.T) {
	us := sim.Microsecond
	hs := HotShifts{
		{At: sim.Time(10 * us), Rotate: 7},
		{At: sim.Time(20 * us), Rotate: 3},
	}
	cases := []struct {
		at   sim.Time
		want int
	}{
		{0, 0},
		{sim.Time(10*us) - 1, 0},      // one instant before the shift: old mapping
		{sim.Time(10 * us), 7},        // exactly at the shift: new mapping already
		{sim.Time(10*us) + 1, 7},      //
		{sim.Time(20 * us), 3},        // offsets are absolute, not cumulative
		{sim.Time(1_000_000 * us), 3}, // last shift holds forever
	}
	for _, tc := range cases {
		if got := hs.Offset(tc.at); got != tc.want {
			t.Errorf("Offset(%v) = %d, want %d", tc.at, got, tc.want)
		}
	}
}
