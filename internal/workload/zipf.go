package workload

import (
	"fmt"
	"math"
	"sort"

	"bandslim/internal/sim"
)

// Skewed key-choice generators for the read-path experiments: both pick a
// rank in [0, n) per call, which the caller maps onto its loaded key set.
// Rank 0 is the hottest key. Sequences are fully determined by (n, shape,
// seed), so same-seed runs replay byte-identically.

// Zipfian draws ranks with P(r) ∝ 1/(r+1)^s — the YCSB-style skew model
// (s ≈ 0.99 is the standard "zipfian" operating point). The distribution is
// materialized as a cumulative table once at construction; each draw is one
// RNG call plus a binary search, with no per-draw allocation.
type Zipfian struct {
	rng *sim.RNG
	cdf []float64
}

// NewZipfian builds a generator over n ranks with exponent s > 0.
func NewZipfian(n int, s float64, seed uint64) (*Zipfian, error) {
	if n < 1 {
		return nil, fmt.Errorf("workload: Zipfian needs n >= 1 ranks, got %d", n)
	}
	if s <= 0 || math.IsNaN(s) || math.IsInf(s, 0) {
		return nil, fmt.Errorf("workload: Zipfian exponent must be > 0 and finite, got %v", s)
	}
	cdf := make([]float64, n)
	var sum float64
	for r := 0; r < n; r++ {
		sum += 1 / math.Pow(float64(r+1), s)
		cdf[r] = sum
	}
	for r := range cdf {
		cdf[r] /= sum
	}
	cdf[n-1] = 1 // exact upper bound despite rounding
	return &Zipfian{rng: sim.NewRNG(seed), cdf: cdf}, nil
}

// N reports the rank-space size.
func (z *Zipfian) N() int { return len(z.cdf) }

// Next draws one rank in [0, N()); rank 0 is the most probable.
func (z *Zipfian) Next() int {
	u := z.rng.Float64()
	return sort.SearchFloat64s(z.cdf, u)
}

// Hotspot draws ranks from a two-tier model: a hot set of the first
// ⌈hotFrac·n⌉ ranks receives hotProb of the draws, uniformly; the remaining
// cold ranks share the rest, uniformly. The 80/20-style alternative to
// Zipfian when a sharp hot/cold boundary is wanted.
type Hotspot struct {
	rng     *sim.RNG
	n, hot  int
	hotProb float64
}

// NewHotspot builds a generator over n ranks with the given hot fraction of
// the rank space and hit probability (both strictly inside (0, 1)).
func NewHotspot(n int, hotFrac, hotProb float64, seed uint64) (*Hotspot, error) {
	if n < 2 {
		return nil, fmt.Errorf("workload: Hotspot needs n >= 2 ranks, got %d", n)
	}
	if !(hotFrac > 0 && hotFrac < 1) || !(hotProb > 0 && hotProb < 1) {
		return nil, fmt.Errorf("workload: Hotspot fractions must be in (0,1), got frac=%v prob=%v",
			hotFrac, hotProb)
	}
	hot := int(math.Ceil(hotFrac * float64(n)))
	if hot >= n {
		hot = n - 1
	}
	return &Hotspot{rng: sim.NewRNG(seed), n: n, hot: hot, hotProb: hotProb}, nil
}

// N reports the rank-space size.
func (h *Hotspot) N() int { return h.n }

// HotRanks reports how many leading ranks form the hot set.
func (h *Hotspot) HotRanks() int { return h.hot }

// Next draws one rank in [0, N()).
func (h *Hotspot) Next() int {
	if h.rng.Float64() < h.hotProb {
		return int(h.rng.Uint64() % uint64(h.hot))
	}
	return h.hot + int(h.rng.Uint64()%uint64(h.n-h.hot))
}
