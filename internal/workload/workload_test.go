package workload

import (
	"encoding/binary"
	"testing"
	"testing/quick"
)

func drain(g Generator) []Op {
	var out []Op
	for {
		op, ok := g.Next()
		if !ok {
			return out
		}
		out = append(out, op)
	}
}

func TestFeistelIsPermutation(t *testing.T) {
	f := newFeistel(42)
	seen := make(map[uint32]bool, 1<<16)
	// Full 2^32 is too slow; verify injectivity over a 2^16 sample plus
	// structured inputs.
	for i := uint32(0); i < 1<<16; i++ {
		v := f.permute(i)
		if seen[v] {
			t.Fatalf("collision at input %d", i)
		}
		seen[v] = true
	}
}

func TestSequentialKeysAreOrdered(t *testing.T) {
	k := NewSequentialKeys()
	for i := uint32(0); i < 100; i++ {
		key := k.Next()
		if binary.BigEndian.Uint32(key) != i {
			t.Fatalf("key %d = %x", i, key)
		}
	}
}

func TestRandomKeysUniqueAndSeeded(t *testing.T) {
	a, b := NewRandomKeys(7), NewRandomKeys(7)
	c := NewRandomKeys(8)
	seen := make(map[string]bool)
	diff := false
	for i := 0; i < 10000; i++ {
		ka := a.Next()
		if seen[string(ka)] {
			t.Fatalf("duplicate key at %d", i)
		}
		seen[string(ka)] = true
		if string(ka) != string(b.Next()) {
			t.Fatal("same seed diverged")
		}
		if string(ka) != string(c.Next()) {
			diff = true
		}
	}
	if !diff {
		t.Fatal("different seeds produced identical streams")
	}
}

func TestFillSeq(t *testing.T) {
	w := NewFillSeq(10, 512)
	if w.Remaining() != 10 {
		t.Fatalf("Remaining = %d", w.Remaining())
	}
	ops := drain(w)
	if len(ops) != 10 {
		t.Fatalf("drained %d ops", len(ops))
	}
	for i, op := range ops {
		if op.ValueSize != 512 {
			t.Fatalf("op %d size %d", i, op.ValueSize)
		}
		if binary.BigEndian.Uint32(op.Key) != uint32(i) {
			t.Fatalf("op %d key %x", i, op.Key)
		}
	}
	if _, ok := w.Next(); ok {
		t.Fatal("exhausted generator kept producing")
	}
	if w.Name() == "" {
		t.Fatal("empty name")
	}
}

func TestWorkloadBRatio(t *testing.T) {
	const n = 100000
	w := NewWorkloadB(n, 1)
	small := 0
	for _, op := range drain(w) {
		switch op.ValueSize {
		case 8:
			small++
		case 2048:
		default:
			t.Fatalf("unexpected size %d", op.ValueSize)
		}
	}
	frac := float64(small) / n
	if frac < 0.88 || frac > 0.92 {
		t.Fatalf("small fraction %.3f, want ~0.9", frac)
	}
}

func TestWorkloadCRatio(t *testing.T) {
	const n = 100000
	w := NewWorkloadC(n, 1)
	big := 0
	for _, op := range drain(w) {
		if op.ValueSize == 2048 {
			big++
		}
	}
	frac := float64(big) / n
	if frac < 0.88 || frac > 0.92 {
		t.Fatalf("big fraction %.3f, want ~0.9", frac)
	}
}

func TestWorkloadDUniform(t *testing.T) {
	const n = 90000
	w := NewWorkloadD(n, 1)
	counts := map[int]int{}
	for _, op := range drain(w) {
		counts[op.ValueSize]++
	}
	if len(counts) != 9 {
		t.Fatalf("%d distinct sizes, want 9", len(counts))
	}
	for size, c := range counts {
		if c < n/9-n/60 || c > n/9+n/60 {
			t.Fatalf("size %d count %d, want ~%d", size, c, n/9)
		}
	}
}

// W(M): max 1 KiB and ~70% under 35 bytes (§4.1).
func TestWorkloadMShape(t *testing.T) {
	const n = 100000
	w := NewWorkloadM(n, 1)
	under35, max := 0, 0
	for _, op := range drain(w) {
		if op.ValueSize < 35 {
			under35++
		}
		if op.ValueSize > max {
			max = op.ValueSize
		}
		if op.ValueSize < 1 {
			t.Fatalf("non-positive size %d", op.ValueSize)
		}
	}
	frac := float64(under35) / n
	if frac < 0.65 || frac > 0.75 {
		t.Fatalf("under-35B fraction %.3f, want ~0.70", frac)
	}
	if max > 1024 {
		t.Fatalf("max size %d exceeds 1 KiB", max)
	}
}

func TestMixValidation(t *testing.T) {
	if _, err := NewMix("x", 10, 0, nil); err == nil {
		t.Fatal("empty sizes accepted")
	}
	if _, err := NewMix("x", 10, 0, []SizeRatio{{8, 0.5}}); err == nil {
		t.Fatal("ratios summing to 0.5 accepted")
	}
	if _, err := NewMix("x", 10, 0, []SizeRatio{{-1, 1.0}}); err == nil {
		t.Fatal("negative size accepted")
	}
}

func TestValueFillerDeterministicPerSeed(t *testing.T) {
	a, b := NewValueFiller(3), NewValueFiller(3)
	va := a.Fill(nil, 100)
	vb := b.Fill(nil, 100)
	for i := range va {
		if va[i] != vb[i] {
			t.Fatal("same seed, different fill")
		}
	}
	// Reuse a larger buffer.
	big := a.Fill(va, 50)
	if len(big) != 50 {
		t.Fatalf("reused fill length %d", len(big))
	}
}

// Property: every generator yields exactly n ops with unique keys.
func TestGeneratorsExactCountUniqueKeysProperty(t *testing.T) {
	f := func(seed uint64, nn uint8) bool {
		n := int(nn)%500 + 1
		gens := []Generator{
			NewFillSeq(n, 64),
			NewWorkloadB(n, seed),
			NewWorkloadC(n, seed),
			NewWorkloadD(n, seed),
			NewWorkloadM(n, seed),
		}
		for _, g := range gens {
			ops := drain(g)
			if len(ops) != n {
				return false
			}
			seen := make(map[string]bool, n)
			for _, op := range ops {
				if len(op.Key) != 4 || seen[string(op.Key)] || op.ValueSize <= 0 {
					return false
				}
				seen[string(op.Key)] = true
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}
