package timeseries

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"

	"bandslim/internal/metrics"
)

// formatFloat renders a value with the minimal round-trippable digits, so
// exports are byte-stable and diff-friendly.
func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// escapeLabel escapes a Prometheus label value per the exposition format.
func escapeLabel(v string) string {
	return strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`).Replace(v)
}

// WritePrometheus writes one snapshot in the Prometheus text exposition
// format (version 0.0.4). Counters gain the conventional _total suffix,
// gauges are emitted as-is, and each histogram emits cumulative le buckets
// trimmed to the populated range (leading empty buckets and the tail past
// the last occupied bucket are elided — the +Inf bucket always carries the
// total), then _sum and _count. Output is a pure function of the snapshot:
// same-seed runs produce byte-identical bytes.
func WritePrometheus(w io.Writer, prefix string, descs []Desc, snap Snapshot, histHelp map[string]string) error {
	bw := bufio.NewWriter(w)
	for i, d := range descs {
		name := prefix + "_" + d.Name
		typ := "gauge"
		if d.Kind == KindCounter {
			name += "_total"
			typ = "counter"
		}
		if d.Help != "" {
			fmt.Fprintf(bw, "# HELP %s %s\n", name, d.Help)
		}
		fmt.Fprintf(bw, "# TYPE %s %s\n", name, typ)
		fmt.Fprintf(bw, "%s %s\n", name, formatFloat(snap.Values[i]))
	}
	// The exposition format requires all series of one metric family to be
	// contiguous, so group labeled histograms by family name, keeping
	// first-occurrence order.
	var families []string
	byFamily := make(map[string][]Hist)
	for _, h := range snap.Hists {
		if _, ok := byFamily[h.Key.Name]; !ok {
			families = append(families, h.Key.Name)
		}
		byFamily[h.Key.Name] = append(byFamily[h.Key.Name], h)
	}
	for _, fam := range families {
		name := prefix + "_" + fam
		if help := histHelp[fam]; help != "" {
			fmt.Fprintf(bw, "# HELP %s %s\n", name, help)
		}
		fmt.Fprintf(bw, "# TYPE %s histogram\n", name)
		for _, h := range byFamily[fam] {
			writePromHistogram(bw, name, h.Key, h.H)
		}
	}
	return bw.Flush()
}

// writePromHistogram emits one distribution's _bucket/_sum/_count lines.
func writePromHistogram(bw *bufio.Writer, name string, key HistKey, h *metrics.Histogram) {
	labels := func(le string) string {
		if key.Label == "" {
			if le == "" {
				return ""
			}
			return fmt.Sprintf(`{le="%s"}`, le)
		}
		if le == "" {
			return fmt.Sprintf(`{%s="%s"}`, key.Label, escapeLabel(key.Value))
		}
		return fmt.Sprintf(`{%s="%s",le="%s"}`, key.Label, escapeLabel(key.Value), le)
	}
	total := h.Count()
	for _, b := range h.CumulativeBuckets() {
		if math.IsInf(b.UpperBound, 1) {
			break
		}
		if b.Count == 0 {
			continue // leading empty buckets carry no information
		}
		fmt.Fprintf(bw, "%s_bucket%s %d\n", name, labels(formatFloat(b.UpperBound)), b.Count)
		if b.Count == total {
			break // every later bucket repeats the total; +Inf closes it out
		}
	}
	fmt.Fprintf(bw, "%s_bucket%s %d\n", name, labels("+Inf"), total)
	fmt.Fprintf(bw, "%s_sum%s %s\n", name, labels(""), formatFloat(h.Sum()))
	fmt.Fprintf(bw, "%s_count%s %d\n", name, labels(""), total)
}

// histColumnBase names one distribution's CSV column group: the family name
// alone, or family.label-value for labeled distributions.
func histColumnBase(k HistKey) string {
	if k.Label == "" {
		return k.Name
	}
	return k.Name + "." + k.Value
}

// WriteCSV writes the series as one CSV table feeding the results/*.csv
// figure pipeline: a t_us time axis, every scalar column in Desc order, a
// <name>_per_sec rate column for every counter, and count/mean/p50/p99
// columns for every latency distribution in first-observation order.
// Deterministic: column order and float formatting are fixed.
func WriteCSV(w io.Writer, s Series) error {
	bw := bufio.NewWriter(w)
	cols := []string{"t_us"}
	for _, d := range s.Descs {
		cols = append(cols, d.Name)
	}
	for _, d := range s.Descs {
		if d.Kind == KindCounter {
			cols = append(cols, d.Name+"_per_sec")
		}
	}
	for _, k := range s.HistKeys {
		base := histColumnBase(k)
		cols = append(cols, base+"_count", base+"_mean", base+"_p50", base+"_p99")
	}
	fmt.Fprintln(bw, strings.Join(cols, ","))
	secs := s.Interval.Seconds()
	for i, sm := range s.Samples {
		fields := make([]string, 0, len(cols))
		fields = append(fields, formatFloat(sm.T.Micros()))
		for _, v := range sm.Values {
			fields = append(fields, formatFloat(v))
		}
		for j, d := range s.Descs {
			if d.Kind != KindCounter {
				continue
			}
			var rate float64
			if i > 0 {
				rate = (sm.Values[j] - s.Samples[i-1].Values[j]) / secs
			}
			fields = append(fields, formatFloat(rate))
		}
		for _, k := range s.HistKeys {
			h := histAt(sm, k)
			if h == nil || h.Count() == 0 {
				fields = append(fields, "0", "0", "0", "0")
				continue
			}
			fields = append(fields,
				strconv.FormatInt(h.Count(), 10),
				formatFloat(h.Mean()),
				formatFloat(h.P50()),
				formatFloat(h.P99()))
		}
		fmt.Fprintln(bw, strings.Join(fields, ","))
	}
	return bw.Flush()
}
