// Package timeseries samples the simulator's cumulative statistics on the
// simulated clock and renders the resulting per-metric series for export.
//
// A Sampler polls a snapshot source whenever the simulated clock crosses a
// boundary of its fixed interval, producing one Sample per boundary: the
// scalar metric values declared by a Desc table plus point-in-time clones of
// the latency histograms. Because the clock only advances while operations
// execute, sample k records the counter state at the first operation
// boundary at or after t = k·interval; a quiet stretch of simulated time
// repeats the previous values, which is exactly what a trajectory plot
// should show.
//
// Per-shard series produced from the same Desc table and interval merge on
// the simulated-time axis with MergeSeries: counters and sums add, gauges
// aggregate per their declared mode, and histograms merge bucket-exactly
// via metrics.Histogram.Merge. Everything here is a pure function of the
// samples, so a deterministic simulation yields byte-identical exports.
package timeseries

import (
	"fmt"

	"bandslim/internal/metrics"
	"bandslim/internal/sim"
)

// Kind distinguishes how a scalar metric accumulates.
type Kind uint8

const (
	// KindCounter is a monotonically non-decreasing cumulative tally.
	KindCounter Kind = iota
	// KindGauge is an instantaneous reading that can move both ways.
	KindGauge
)

// Agg selects how per-shard readings of one metric combine when series or
// snapshots merge.
type Agg uint8

const (
	// AggSum adds readings (byte ledgers, op counts, free space).
	AggSum Agg = iota
	// AggMax keeps the largest reading (clocks, wear).
	AggMax
	// AggMean averages readings over all shards (utilizations).
	AggMean
)

// Desc declares one scalar metric: its series/CSV column name (snake_case,
// unprefixed), kind, cross-shard aggregation, and Prometheus HELP text.
type Desc struct {
	Name string
	Kind Kind
	Agg  Agg
	Help string
}

// HistKey identifies one latency distribution: a metric family name plus an
// optional label pair, e.g. {op_round_trip_ns, op, PUT}.
type HistKey struct {
	Name  string
	Label string
	Value string
}

// Hist pairs a key with a point-in-time histogram clone.
type Hist struct {
	Key HistKey
	H   *metrics.Histogram
}

// Snapshot is one reading of every instrumented metric: scalar values
// parallel to the Desc table plus cloned latency histograms. Sources hand
// out clones, so a Snapshot never races with the live accumulators.
type Snapshot struct {
	Values []float64
	Hists  []Hist
}

// Sample is one recorded Snapshot stamped with its nominal boundary time.
// When one operation crosses several boundaries, the boundaries share the
// underlying slices; treat samples as read-only.
type Sample struct {
	T      sim.Time
	Values []float64
	Hists  []Hist
}

// Series is a recorded sequence of samples on a fixed simulated-time grid:
// sample i sits at T = i·Interval, starting from a zero-state sample at
// t = 0. HistKeys lists every distribution seen, in first-observation order
// (early samples may lack later keys; exports treat missing keys as empty).
type Series struct {
	Interval sim.Duration
	Descs    []Desc
	HistKeys []HistKey
	Samples  []Sample
}

// Len reports the number of samples.
func (s Series) Len() int { return len(s.Samples) }

// Column extracts one scalar metric's values across all samples.
func (s Series) Column(name string) ([]float64, bool) {
	for i, d := range s.Descs {
		if d.Name == name {
			col := make([]float64, len(s.Samples))
			for j, sm := range s.Samples {
				col[j] = sm.Values[i]
			}
			return col, true
		}
	}
	return nil, false
}

// Rate derives a counter's per-simulated-second rate series from successive
// deltas: out[i] = (v[i] - v[i-1]) / Interval, with out[0] = 0.
func (s Series) Rate(name string) ([]float64, bool) {
	col, ok := s.Column(name)
	if !ok {
		return nil, false
	}
	out := make([]float64, len(col))
	secs := s.Interval.Seconds()
	for i := 1; i < len(col); i++ {
		out[i] = (col[i] - col[i-1]) / secs
	}
	return out, true
}

// histAt finds one sample's histogram for key, or nil if the key had not
// been observed yet at that sample.
func histAt(sm Sample, key HistKey) *metrics.Histogram {
	for _, h := range sm.Hists {
		if h.Key == key {
			return h.H
		}
	}
	return nil
}

// Sampler polls a snapshot source whenever the simulated clock crosses a
// boundary of its interval. It is not internally synchronized: DB serializes
// polls under its mutex, and each shard polls only on its worker goroutine.
type Sampler struct {
	interval sim.Duration
	source   func() Snapshot
	next     sim.Time
	series   Series
	seen     map[HistKey]struct{}
}

// NewSampler starts a sampler on the given interval (> 0) and records the
// initial t = 0 sample immediately.
func NewSampler(interval sim.Duration, descs []Desc, source func() Snapshot) *Sampler {
	if interval <= 0 {
		panic(fmt.Sprintf("timeseries: NewSampler interval must be > 0, got %v", interval))
	}
	s := &Sampler{
		interval: interval,
		source:   source,
		series:   Series{Interval: interval, Descs: descs},
		seen:     make(map[HistKey]struct{}),
	}
	s.record(0, source())
	s.next = sim.Time(interval)
	return s
}

// Poll records one sample per interval boundary crossed since the last
// call. The fast path (no boundary crossed) is a single comparison.
func (s *Sampler) Poll(now sim.Time) {
	if now < s.next {
		return
	}
	snap := s.source()
	for now >= s.next {
		s.record(s.next, snap)
		s.next = s.next.Add(s.interval)
	}
}

func (s *Sampler) record(t sim.Time, snap Snapshot) {
	if len(snap.Values) != len(s.series.Descs) {
		panic(fmt.Sprintf("timeseries: snapshot has %d values, Desc table has %d",
			len(snap.Values), len(s.series.Descs)))
	}
	for _, h := range snap.Hists {
		if _, ok := s.seen[h.Key]; !ok {
			s.seen[h.Key] = struct{}{}
			s.series.HistKeys = append(s.series.HistKeys, h.Key)
		}
	}
	s.series.Samples = append(s.series.Samples, Sample{T: t, Values: snap.Values, Hists: snap.Hists})
}

// Series returns the recorded series. The header slices are copied; samples
// share value slices and histogram clones with the sampler's history, which
// is append-only — treat them as read-only.
func (s *Sampler) Series() Series {
	out := s.series
	out.Descs = append([]Desc(nil), s.series.Descs...)
	out.HistKeys = append([]HistKey(nil), s.series.HistKeys...)
	out.Samples = append([]Sample(nil), s.series.Samples...)
	return out
}

// MergeSnapshots folds per-shard snapshots taken against the same Desc
// table into one aggregate: scalars combine per their Agg mode, histograms
// merge bucket-exactly by key (key order: shard index, then
// first-observation order within the shard).
func MergeSnapshots(descs []Desc, snaps []Snapshot) Snapshot {
	vals := make([]float64, len(descs))
	if len(snaps) == 0 {
		return Snapshot{Values: vals}
	}
	for i, d := range descs {
		switch d.Agg {
		case AggSum:
			for _, sn := range snaps {
				vals[i] += sn.Values[i]
			}
		case AggMax:
			vals[i] = snaps[0].Values[i]
			for _, sn := range snaps[1:] {
				if sn.Values[i] > vals[i] {
					vals[i] = sn.Values[i]
				}
			}
		case AggMean:
			for _, sn := range snaps {
				vals[i] += sn.Values[i]
			}
			vals[i] /= float64(len(snaps))
		}
	}
	var keys []HistKey
	seen := make(map[HistKey]struct{})
	for _, sn := range snaps {
		for _, h := range sn.Hists {
			if _, ok := seen[h.Key]; !ok {
				seen[h.Key] = struct{}{}
				keys = append(keys, h.Key)
			}
		}
	}
	hists := make([]Hist, 0, len(keys))
	for _, k := range keys {
		m := metrics.NewHistogram()
		for _, sn := range snaps {
			for _, h := range sn.Hists {
				if h.Key == k {
					m.Merge(h.H)
				}
			}
		}
		hists = append(hists, Hist{Key: k, H: m})
	}
	return Snapshot{Values: vals, Hists: hists}
}

// MergeSeries combines per-shard series recorded on the same interval and
// Desc table onto one simulated-time axis. The merged series spans the
// longest part; a shard whose clock stopped earlier contributes its final
// sample to later boundaries (its counters stay flat once it goes idle).
// With a single part the merge is the identity on every counter metric.
func MergeSeries(parts ...Series) Series {
	if len(parts) == 0 {
		return Series{}
	}
	base := parts[0]
	maxLen := 0
	for _, p := range parts {
		if p.Interval != base.Interval {
			panic(fmt.Sprintf("timeseries: MergeSeries interval mismatch: %v vs %v", p.Interval, base.Interval))
		}
		if len(p.Samples) > maxLen {
			maxLen = len(p.Samples)
		}
	}
	out := Series{
		Interval: base.Interval,
		Descs:    append([]Desc(nil), base.Descs...),
	}
	seen := make(map[HistKey]struct{})
	for _, p := range parts {
		for _, k := range p.HistKeys {
			if _, ok := seen[k]; !ok {
				seen[k] = struct{}{}
				out.HistKeys = append(out.HistKeys, k)
			}
		}
	}
	snaps := make([]Snapshot, 0, len(parts))
	for i := 0; i < maxLen; i++ {
		snaps = snaps[:0]
		for _, p := range parts {
			if len(p.Samples) == 0 {
				continue
			}
			j := i
			if j >= len(p.Samples) {
				j = len(p.Samples) - 1
			}
			sm := p.Samples[j]
			snaps = append(snaps, Snapshot{Values: sm.Values, Hists: sm.Hists})
		}
		merged := MergeSnapshots(out.Descs, snaps)
		out.Samples = append(out.Samples, Sample{
			T:      sim.Time(int64(base.Interval) * int64(i)),
			Values: merged.Values,
			Hists:  merged.Hists,
		})
	}
	return out
}
