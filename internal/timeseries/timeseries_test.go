package timeseries

import (
	"bytes"
	"strings"
	"testing"

	"bandslim/internal/metrics"
	"bandslim/internal/sim"
)

var testDescs = []Desc{
	{Name: "ops", Kind: KindCounter, Agg: AggSum, Help: "operations completed"},
	{Name: "clock_ns", Kind: KindGauge, Agg: AggMax, Help: "simulated clock"},
	{Name: "util", Kind: KindGauge, Agg: AggMean, Help: "utilization"},
}

// fakeSource returns a snapshot source backed by mutable counters the test
// advances between polls.
type fakeSource struct {
	ops   float64
	clock float64
	util  float64
	hists []Hist
}

func (f *fakeSource) snapshot() Snapshot {
	hists := make([]Hist, len(f.hists))
	for i, h := range f.hists {
		hists[i] = Hist{Key: h.Key, H: h.H.Clone()}
	}
	return Snapshot{Values: []float64{f.ops, f.clock, f.util}, Hists: hists}
}

func TestSamplerBoundaries(t *testing.T) {
	src := &fakeSource{}
	s := NewSampler(100, testDescs, src.snapshot)

	// The t = 0 baseline sample is recorded at construction.
	if got := s.Series(); got.Len() != 1 || got.Samples[0].T != 0 {
		t.Fatalf("after construction: %d samples, first T %v", got.Len(), got.Samples[0].T)
	}

	// No boundary crossed: nothing recorded.
	src.ops = 5
	s.Poll(99)
	if got := s.Series(); got.Len() != 1 {
		t.Fatalf("poll before boundary recorded a sample: %d", got.Len())
	}

	// One boundary crossed exactly at t = 100.
	s.Poll(100)
	got := s.Series()
	if got.Len() != 2 || got.Samples[1].T != 100 {
		t.Fatalf("after first boundary: %d samples, T %v", got.Len(), got.Samples[1].T)
	}
	if got.Samples[1].Values[0] != 5 {
		t.Fatalf("sample 1 ops = %v, want 5", got.Samples[1].Values[0])
	}

	// One long operation crossing three boundaries records three samples
	// that share the same snapshot values.
	src.ops = 42
	s.Poll(450)
	got = s.Series()
	if got.Len() != 5 {
		t.Fatalf("after multi-boundary poll: %d samples, want 5", got.Len())
	}
	for i := 2; i <= 4; i++ {
		if got.Samples[i].T != sim.Time(i)*100 {
			t.Fatalf("sample %d T = %v, want %v", i, got.Samples[i].T, i*100)
		}
		if got.Samples[i].Values[0] != 42 {
			t.Fatalf("sample %d ops = %v, want 42 (shared snapshot)", i, got.Samples[i].Values[0])
		}
	}

	// A later poll continues from the next unfilled boundary.
	src.ops = 50
	s.Poll(500)
	if got := s.Series(); got.Len() != 6 || got.Samples[5].Values[0] != 50 {
		t.Fatalf("after t=500 poll: %d samples, ops %v", got.Len(), got.Samples[5].Values[0])
	}
}

func TestSamplerPanicsOnBadInterval(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewSampler(0) did not panic")
		}
	}()
	NewSampler(0, testDescs, (&fakeSource{}).snapshot)
}

func TestColumnAndRate(t *testing.T) {
	src := &fakeSource{}
	s := NewSampler(sim.Duration(sim.Microsecond), testDescs, src.snapshot)
	for i := 1; i <= 4; i++ {
		src.ops = float64(i * 10)
		s.Poll(sim.Time(i) * sim.Time(sim.Microsecond))
	}
	series := s.Series()

	col, ok := series.Column("ops")
	if !ok {
		t.Fatal("Column(ops) missing")
	}
	want := []float64{0, 10, 20, 30, 40}
	for i := range want {
		if col[i] != want[i] {
			t.Fatalf("Column(ops)[%d] = %v, want %v", i, col[i], want[i])
		}
	}

	rate, ok := series.Rate("ops")
	if !ok {
		t.Fatal("Rate(ops) missing")
	}
	if rate[0] != 0 {
		t.Fatalf("Rate[0] = %v, want 0", rate[0])
	}
	// 10 ops per simulated microsecond = 1e7 per simulated second.
	for i := 1; i < len(rate); i++ {
		if rate[i] != 1e7 {
			t.Fatalf("Rate[%d] = %v, want 1e7", i, rate[i])
		}
	}

	if _, ok := series.Column("no_such_metric"); ok {
		t.Fatal("Column on unknown name reported ok")
	}
}

func TestSamplerTracksNewHistKeys(t *testing.T) {
	src := &fakeSource{}
	s := NewSampler(100, testDescs, src.snapshot)

	h := metrics.NewHistogram()
	h.Observe(500)
	src.hists = []Hist{{Key: HistKey{Name: "lat_ns", Label: "op", Value: "PUT"}, H: h}}
	s.Poll(100)

	h2 := metrics.NewHistogram()
	h2.Observe(900)
	src.hists = append(src.hists, Hist{Key: HistKey{Name: "lat_ns", Label: "op", Value: "GET"}, H: h2})
	s.Poll(200)

	series := s.Series()
	if len(series.HistKeys) != 2 {
		t.Fatalf("HistKeys = %v, want 2 keys in first-observation order", series.HistKeys)
	}
	if series.HistKeys[0].Value != "PUT" || series.HistKeys[1].Value != "GET" {
		t.Fatalf("HistKeys order = %v", series.HistKeys)
	}
	// The first sample has no histogram for either key.
	if histAt(series.Samples[0], series.HistKeys[0]) != nil {
		t.Fatal("t=0 sample unexpectedly has the PUT histogram")
	}
	if got := histAt(series.Samples[2], series.HistKeys[1]); got == nil || got.Count() != 1 {
		t.Fatal("t=200 sample missing the GET histogram")
	}
}

func TestMergeSeriesIdentityOnCounters(t *testing.T) {
	src := &fakeSource{}
	s := NewSampler(100, testDescs, src.snapshot)
	for i := 1; i <= 3; i++ {
		src.ops = float64(i)
		src.clock = float64(i * 100)
		src.util = 0.5
		s.Poll(sim.Time(i * 100))
	}
	one := s.Series()
	merged := MergeSeries(one)
	if merged.Len() != one.Len() {
		t.Fatalf("identity merge changed length: %d vs %d", merged.Len(), one.Len())
	}
	for _, name := range []string{"ops", "clock_ns", "util"} {
		a, _ := one.Column(name)
		b, _ := merged.Column(name)
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("identity merge changed %s[%d]: %v vs %v", name, i, a[i], b[i])
			}
		}
	}
}

func TestMergeSeriesAggregatesAndCarriesForward(t *testing.T) {
	// Shard A records 3 boundaries, shard B only 1: B's final sample must
	// carry forward to A's later boundaries.
	mk := func(ops, clock, util []float64) Series {
		src := &fakeSource{}
		s := NewSampler(100, testDescs, src.snapshot)
		for i := range ops {
			src.ops, src.clock, src.util = ops[i], clock[i], util[i]
			s.Poll(sim.Time((i + 1) * 100))
		}
		return s.Series()
	}
	a := mk([]float64{10, 20, 30}, []float64{100, 200, 300}, []float64{0.2, 0.4, 0.6})
	b := mk([]float64{5}, []float64{100}, []float64{1.0})

	m := MergeSeries(a, b)
	if m.Len() != 4 {
		t.Fatalf("merged length = %d, want 4 (longest part)", m.Len())
	}
	ops, _ := m.Column("ops")
	// Counter sums; b stays flat at 5 after its clock stops.
	for i, want := range []float64{0, 15, 25, 35} {
		if ops[i] != want {
			t.Fatalf("ops[%d] = %v, want %v", i, ops[i], want)
		}
	}
	clock, _ := m.Column("clock_ns")
	for i, want := range []float64{0, 100, 200, 300} {
		if clock[i] != want {
			t.Fatalf("clock_ns[%d] = %v, want %v (AggMax)", i, clock[i], want)
		}
	}
	util, _ := m.Column("util")
	for i, want := range []float64{0, 0.6, 0.7, 0.8} { // mean of a and carried-forward b
		if util[i] != want {
			t.Fatalf("util[%d] = %v, want %v (AggMean)", i, util[i], want)
		}
	}
	// The time axis stays on the shared grid.
	for i, sm := range m.Samples {
		if sm.T != sim.Time(i*100) {
			t.Fatalf("merged sample %d T = %v, want %v", i, sm.T, i*100)
		}
	}
}

func TestMergeSeriesPanicsOnIntervalMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("interval mismatch did not panic")
		}
	}()
	a := Series{Interval: 100}
	b := Series{Interval: 200}
	MergeSeries(a, b)
}

func TestMergeSnapshotsHistogramsBucketExact(t *testing.T) {
	key := HistKey{Name: "lat_ns", Label: "op", Value: "PUT"}
	h1 := metrics.NewHistogram()
	h2 := metrics.NewHistogram()
	combined := metrics.NewHistogram()
	for i := 0; i < 200; i++ {
		v := float64(100 + i*37)
		combined.Observe(v)
		if i%2 == 0 {
			h1.Observe(v)
		} else {
			h2.Observe(v)
		}
	}
	snap := MergeSnapshots(testDescs, []Snapshot{
		{Values: []float64{1, 2, 3}, Hists: []Hist{{Key: key, H: h1}}},
		{Values: []float64{4, 5, 6}, Hists: []Hist{{Key: key, H: h2}}},
	})
	if snap.Values[0] != 5 { // AggSum
		t.Fatalf("ops = %v, want 5", snap.Values[0])
	}
	if snap.Values[1] != 5 { // AggMax
		t.Fatalf("clock = %v, want 5", snap.Values[1])
	}
	if snap.Values[2] != 4.5 { // AggMean
		t.Fatalf("util = %v, want 4.5", snap.Values[2])
	}
	if len(snap.Hists) != 1 {
		t.Fatalf("merged hists = %d, want 1", len(snap.Hists))
	}
	got := snap.Hists[0].H.CumulativeBuckets()
	want := combined.CumulativeBuckets()
	if len(got) != len(want) {
		t.Fatalf("bucket layouts differ")
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("bucket %d: merged %+v, combined %+v", i, got[i], want[i])
		}
	}
}

func TestWritePrometheusFormat(t *testing.T) {
	h := metrics.NewHistogram()
	h.Observe(1500)
	h.Observe(2500)
	snap := Snapshot{
		Values: []float64{12, 3400, 0.25},
		Hists:  []Hist{{Key: HistKey{Name: "lat_ns", Label: "op", Value: "PUT"}, H: h}},
	}
	var buf bytes.Buffer
	if err := WritePrometheus(&buf, "bandslim", testDescs, snap, map[string]string{"lat_ns": "latency"}); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	wants := []string{
		"# HELP bandslim_ops_total operations completed",
		"# TYPE bandslim_ops_total counter",
		"bandslim_ops_total 12",
		"# TYPE bandslim_clock_ns gauge",
		"bandslim_clock_ns 3400",
		"bandslim_util 0.25",
		"# HELP bandslim_lat_ns latency",
		"# TYPE bandslim_lat_ns histogram",
		`bandslim_lat_ns_bucket{op="PUT",le="+Inf"} 2`,
		`bandslim_lat_ns_sum{op="PUT"} 4000`,
		`bandslim_lat_ns_count{op="PUT"} 2`,
	}
	for _, want := range wants {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}

	// Cumulative le buckets are monotone and every finite bucket precedes +Inf.
	var infSeen bool
	for _, line := range strings.Split(out, "\n") {
		if strings.Contains(line, `le="+Inf"`) {
			infSeen = true
		} else if infSeen && strings.Contains(line, "_bucket{") {
			t.Fatalf("finite bucket after +Inf: %s", line)
		}
	}

	// Determinism: a second render is byte-identical.
	var buf2 bytes.Buffer
	if err := WritePrometheus(&buf2, "bandslim", testDescs, snap, map[string]string{"lat_ns": "latency"}); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), buf2.Bytes()) {
		t.Fatal("WritePrometheus is not byte-stable across renders")
	}
}

func TestWritePrometheusEmptyHistogram(t *testing.T) {
	snap := Snapshot{
		Values: []float64{0, 0, 0},
		Hists:  []Hist{{Key: HistKey{Name: "lat_ns"}, H: metrics.NewHistogram()}},
	}
	var buf bytes.Buffer
	if err := WritePrometheus(&buf, "x", testDescs, snap, nil); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		`x_lat_ns_bucket{le="+Inf"} 0`,
		"x_lat_ns_sum 0",
		"x_lat_ns_count 0",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("empty-histogram output missing %q:\n%s", want, out)
		}
	}
	// No finite buckets for an empty distribution.
	if strings.Count(out, "_bucket") != 1 {
		t.Fatalf("empty histogram emitted finite buckets:\n%s", out)
	}
}

func TestWriteCSVShape(t *testing.T) {
	src := &fakeSource{}
	s := NewSampler(sim.Duration(sim.Microsecond), testDescs, src.snapshot)
	h := metrics.NewHistogram()
	h.Observe(777)
	src.ops, src.clock, src.util = 10, 1000, 0.5
	src.hists = []Hist{{Key: HistKey{Name: "lat_ns", Label: "op", Value: "PUT"}, H: h}}
	s.Poll(sim.Time(sim.Microsecond))

	var buf bytes.Buffer
	if err := WriteCSV(&buf, s.Series()); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(buf.String(), "\n"), "\n")
	if len(lines) != 3 {
		t.Fatalf("CSV lines = %d, want header + 2 samples", len(lines))
	}
	header := strings.Split(lines[0], ",")
	wantHeader := []string{
		"t_us", "ops", "clock_ns", "util", "ops_per_sec",
		"lat_ns.PUT_count", "lat_ns.PUT_mean", "lat_ns.PUT_p50", "lat_ns.PUT_p99",
	}
	if len(header) != len(wantHeader) {
		t.Fatalf("header = %v, want %v", header, wantHeader)
	}
	for i := range header {
		if header[i] != wantHeader[i] {
			t.Fatalf("header[%d] = %q, want %q", i, header[i], wantHeader[i])
		}
	}
	// The t=0 row has zero scalars and zero histogram columns (key unseen).
	row0 := strings.Split(lines[1], ",")
	for i, f := range row0 {
		if f != "0" {
			t.Fatalf("t=0 row field %d = %q, want 0", i, f)
		}
	}
	row1 := strings.Split(lines[2], ",")
	if row1[0] != "1" || row1[1] != "10" || row1[4] != "1e+07" {
		t.Fatalf("t=1us row = %v", row1)
	}
	if row1[5] != "1" || row1[6] != "777" {
		t.Fatalf("histogram columns = %v", row1[5:])
	}

	// Determinism across renders.
	var buf2 bytes.Buffer
	if err := WriteCSV(&buf2, s.Series()); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), buf2.Bytes()) {
		t.Fatal("WriteCSV is not byte-stable across renders")
	}
}
