// Package metrics provides the counters and streaming statistics used across
// the simulator: byte/op counters, latency distributions with percentile
// estimation, and helpers for formatting the tables the benchmark harness
// prints.
package metrics

import (
	"fmt"
	"math"
	"sort"
)

// Counter is a monotonically increasing tally (bytes, ops, pages, ...).
type Counter struct {
	v int64
}

// Add increases the counter by n. Negative n panics: counters only grow.
func (c *Counter) Add(n int64) {
	if n < 0 {
		panic("metrics: Counter.Add with negative value")
	}
	c.v += n
}

// Inc increases the counter by one.
func (c *Counter) Inc() { c.v++ }

// Value reports the current tally.
func (c *Counter) Value() int64 { return c.v }

// Reset zeroes the counter.
func (c *Counter) Reset() { c.v = 0 }

// Welford accumulates mean/variance online without storing samples.
type Welford struct {
	n    int64
	mean float64
	m2   float64
	min  float64
	max  float64
}

// Observe adds one sample.
func (w *Welford) Observe(x float64) {
	w.n++
	if w.n == 1 {
		w.min, w.max = x, x
	} else {
		if x < w.min {
			w.min = x
		}
		if x > w.max {
			w.max = x
		}
	}
	d := x - w.mean
	w.mean += d / float64(w.n)
	w.m2 += d * (x - w.mean)
}

// Count reports the number of samples observed.
func (w *Welford) Count() int64 { return w.n }

// Mean reports the sample mean (0 with no samples).
func (w *Welford) Mean() float64 { return w.mean }

// Min reports the smallest sample (0 with no samples).
func (w *Welford) Min() float64 { return w.min }

// Max reports the largest sample (0 with no samples).
func (w *Welford) Max() float64 { return w.max }

// Variance reports the unbiased sample variance.
func (w *Welford) Variance() float64 {
	if w.n < 2 {
		return 0
	}
	return w.m2 / float64(w.n-1)
}

// Stddev reports the sample standard deviation.
func (w *Welford) Stddev() float64 { return math.Sqrt(w.Variance()) }

// Sum reports the total of all samples (mean × count).
func (w *Welford) Sum() float64 { return w.mean * float64(w.n) }

// Reset clears the accumulator.
func (w *Welford) Reset() { *w = Welford{} }

// Merge folds other's samples into w, as if every sample had been observed
// on w directly (the parallel-run combination of Chan et al.). Used to
// aggregate per-shard accumulators into one distribution.
func (w *Welford) Merge(other *Welford) {
	if other == nil || other.n == 0 {
		return
	}
	if w.n == 0 {
		*w = *other
		return
	}
	n := w.n + other.n
	d := other.mean - w.mean
	w.m2 += other.m2 + d*d*float64(w.n)*float64(other.n)/float64(n)
	w.mean += d * float64(other.n) / float64(n)
	if other.min < w.min {
		w.min = other.min
	}
	if other.max > w.max {
		w.max = other.max
	}
	w.n = n
}

// Histogram records samples into exponentially sized buckets and can report
// approximate percentiles. It is designed for latency values in nanoseconds:
// buckets grow by ~8% so percentile error stays under a few percent.
type Histogram struct {
	buckets []int64
	bounds  []float64
	under   int64 // samples below bounds[0]
	w       Welford
}

const (
	histMin    = 1.0     // 1 ns
	histMax    = 1e12    // 1000 s
	histGrowth = 1.08006 // ~240 buckets across the range
)

// NewHistogram returns an empty histogram covering 1ns..1000s.
func NewHistogram() *Histogram {
	var bounds []float64
	for b := histMin; b < histMax; b *= histGrowth {
		bounds = append(bounds, b)
	}
	return &Histogram{
		buckets: make([]int64, len(bounds)+1),
		bounds:  bounds,
	}
}

// Observe records one sample (e.g. nanoseconds).
func (h *Histogram) Observe(x float64) {
	h.w.Observe(x)
	if x < h.bounds[0] {
		h.under++
		return
	}
	// First bound strictly greater than x; bucket i-1 holds [bounds[i-1], bounds[i]).
	i := sort.Search(len(h.bounds), func(j int) bool { return h.bounds[j] > x })
	h.buckets[i-1]++
}

// Count reports the number of samples recorded.
func (h *Histogram) Count() int64 { return h.w.Count() }

// Mean reports the exact sample mean.
func (h *Histogram) Mean() float64 { return h.w.Mean() }

// Min reports the exact sample minimum.
func (h *Histogram) Min() float64 { return h.w.Min() }

// Max reports the exact sample maximum.
func (h *Histogram) Max() float64 { return h.w.Max() }

// Stddev reports the exact sample standard deviation.
func (h *Histogram) Stddev() float64 { return h.w.Stddev() }

// Sum reports the exact total of all samples.
func (h *Histogram) Sum() float64 { return h.w.Sum() }

// Bucket is one cumulative histogram bucket: Count samples were observed
// strictly below UpperBound. The final bucket has UpperBound = +Inf and
// Count equal to the total sample count.
type Bucket struct {
	UpperBound float64
	Count      int64
}

// CumulativeBuckets renders the histogram as Prometheus-style cumulative
// buckets over the fixed exponential layout: one entry per bucket boundary
// plus the +Inf bucket. Every histogram shares the layout, so two
// histograms are sample-equivalent iff their cumulative buckets are equal.
func (h *Histogram) CumulativeBuckets() []Bucket {
	out := make([]Bucket, 0, len(h.bounds)+1)
	cum := h.under
	out = append(out, Bucket{UpperBound: h.bounds[0], Count: cum})
	for j := 1; j < len(h.bounds); j++ {
		cum += h.buckets[j-1]
		out = append(out, Bucket{UpperBound: h.bounds[j], Count: cum})
	}
	out = append(out, Bucket{UpperBound: math.Inf(1), Count: h.w.Count()})
	return out
}

// Quantile reports an approximate q-quantile (q in [0,1]) from the buckets.
func (h *Histogram) Quantile(q float64) float64 {
	n := h.w.Count()
	if n == 0 {
		return 0
	}
	if q <= 0 {
		return h.w.Min()
	}
	if q >= 1 {
		return h.w.Max()
	}
	target := int64(q * float64(n))
	cum := h.under
	if cum > target {
		return h.clamp(h.bounds[0] / 2)
	}
	for i, c := range h.buckets {
		cum += c
		if cum > target {
			// Bucket i holds samples in [bounds[i], bounds[i+1]).
			lo := h.bounds[i]
			hi := histMax
			if i+1 < len(h.bounds) {
				hi = h.bounds[i+1]
			}
			return h.clamp((lo + hi) / 2)
		}
	}
	return h.w.Max()
}

// clamp bounds a bucket-midpoint estimate by the exact observed extremes: a
// sparsely populated top (or bottom) bucket's midpoint can exceed the
// observed max (or undershoot the min), which would corrupt percentile
// columns in exported series.
func (h *Histogram) clamp(est float64) float64 {
	if h.w.Count() == 0 {
		return est
	}
	if est < h.w.Min() {
		est = h.w.Min()
	}
	if est > h.w.Max() {
		est = h.w.Max()
	}
	return est
}

// P50 reports the approximate median.
func (h *Histogram) P50() float64 { return h.Quantile(0.50) }

// P99 reports the approximate 99th percentile.
func (h *Histogram) P99() float64 { return h.Quantile(0.99) }

// Merge folds other's samples into h. Every histogram shares the fixed
// exponential bucket layout, so merging is bucketwise addition plus a
// Welford merge; percentiles of the merged histogram are exactly what a
// single histogram observing both sample streams would report.
func (h *Histogram) Merge(other *Histogram) {
	if other == nil {
		return
	}
	for i, c := range other.buckets {
		h.buckets[i] += c
	}
	h.under += other.under
	h.w.Merge(&other.w)
}

// Clone returns an independent copy of the histogram — a point-in-time
// snapshot safe to merge or query after the original keeps accumulating.
func (h *Histogram) Clone() *Histogram {
	c := NewHistogram()
	c.Merge(h)
	return c
}

// Reset clears all samples.
func (h *Histogram) Reset() {
	for i := range h.buckets {
		h.buckets[i] = 0
	}
	h.under = 0
	h.w.Reset()
}

// Summary is a point-in-time digest of a Histogram: the numbers a snapshot
// API can carry without exposing the live accumulator.
type Summary struct {
	Count          int64
	Mean, P50, P99 float64
	Min, Max       float64
}

// Summary digests the histogram's current samples.
func (h *Histogram) Summary() Summary {
	return Summary{
		Count: h.Count(),
		Mean:  h.Mean(),
		P50:   h.P50(),
		P99:   h.P99(),
		Min:   h.Min(),
		Max:   h.Max(),
	}
}

// HistogramSet keys histograms by label (an opcode, a transfer method),
// creating them on first observation. Iteration order is insertion order, so
// exports built from a deterministic run are themselves deterministic. The
// zero value is NOT ready; use NewHistogramSet.
type HistogramSet struct {
	names []string
	m     map[string]*Histogram
}

// NewHistogramSet returns an empty set.
func NewHistogramSet() *HistogramSet {
	return &HistogramSet{m: make(map[string]*Histogram)}
}

// Observe records one sample under name, creating the histogram if needed.
func (s *HistogramSet) Observe(name string, x float64) {
	h, ok := s.m[name]
	if !ok {
		h = NewHistogram()
		s.m[name] = h
		s.names = append(s.names, name)
	}
	h.Observe(x)
}

// Get returns the histogram for name, or nil if nothing was observed under
// it.
func (s *HistogramSet) Get(name string) *Histogram { return s.m[name] }

// Names lists the labels in first-observation order.
func (s *HistogramSet) Names() []string {
	return append([]string(nil), s.names...)
}

// Merge folds other's histograms into s, creating labels as needed.
func (s *HistogramSet) Merge(other *HistogramSet) {
	if other == nil {
		return
	}
	for _, name := range other.names {
		h, ok := s.m[name]
		if !ok {
			h = NewHistogram()
			s.m[name] = h
			s.names = append(s.names, name)
		}
		h.Merge(other.m[name])
	}
}

// Reset clears every histogram but keeps the label order.
func (s *HistogramSet) Reset() {
	for _, h := range s.m {
		h.Reset()
	}
}

// FormatBytes renders a byte count with a binary-unit suffix ("3.88 GiB").
func FormatBytes(n int64) string {
	const unit = 1024
	if n < unit {
		return fmt.Sprintf("%d B", n)
	}
	div, exp := int64(unit), 0
	for m := n / unit; m >= unit; m /= unit {
		div *= unit
		exp++
	}
	return fmt.Sprintf("%.2f %ciB", float64(n)/float64(div), "KMGTPE"[exp])
}

// FormatCount renders a count with K/M/G suffixes ("1.00M").
func FormatCount(n int64) string {
	switch {
	case n >= 1e9:
		return fmt.Sprintf("%.2fG", float64(n)/1e9)
	case n >= 1e6:
		return fmt.Sprintf("%.2fM", float64(n)/1e6)
	case n >= 1e3:
		return fmt.Sprintf("%.2fK", float64(n)/1e3)
	default:
		return fmt.Sprintf("%d", n)
	}
}
