package metrics

import (
	"math"
	"testing"
	"testing/quick"
)

func TestCounterBasics(t *testing.T) {
	var c Counter
	c.Add(5)
	c.Inc()
	if c.Value() != 6 {
		t.Fatalf("Value = %d, want 6", c.Value())
	}
	c.Reset()
	if c.Value() != 0 {
		t.Fatalf("after Reset, Value = %d", c.Value())
	}
}

func TestCounterRejectsNegative(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Add(-1) did not panic")
		}
	}()
	var c Counter
	c.Add(-1)
}

func TestWelfordMeanVariance(t *testing.T) {
	var w Welford
	for _, x := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		w.Observe(x)
	}
	if w.Count() != 8 {
		t.Fatalf("Count = %d", w.Count())
	}
	if w.Mean() != 5 {
		t.Fatalf("Mean = %v, want 5", w.Mean())
	}
	// Population variance of this classic set is 4; sample variance 32/7.
	if got, want := w.Variance(), 32.0/7.0; math.Abs(got-want) > 1e-12 {
		t.Fatalf("Variance = %v, want %v", got, want)
	}
	if w.Min() != 2 || w.Max() != 9 {
		t.Fatalf("Min/Max = %v/%v", w.Min(), w.Max())
	}
}

func TestWelfordEmptyAndSingle(t *testing.T) {
	var w Welford
	if w.Mean() != 0 || w.Variance() != 0 || w.Stddev() != 0 {
		t.Fatal("empty Welford must report zeros")
	}
	w.Observe(3)
	if w.Variance() != 0 {
		t.Fatalf("single-sample variance = %v", w.Variance())
	}
	if w.Mean() != 3 || w.Min() != 3 || w.Max() != 3 {
		t.Fatal("single-sample stats wrong")
	}
}

// Property: Welford mean always equals the arithmetic mean within float
// tolerance, and min/max bracket every sample.
func TestWelfordMatchesNaiveMean(t *testing.T) {
	f := func(samples []uint32) bool {
		if len(samples) == 0 {
			return true
		}
		var w Welford
		sum := 0.0
		for _, s := range samples {
			x := float64(s)
			w.Observe(x)
			sum += x
		}
		naive := sum / float64(len(samples))
		if math.Abs(w.Mean()-naive) > 1e-6*(1+math.Abs(naive)) {
			return false
		}
		return w.Min() <= naive && naive <= w.Max()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestHistogramQuantiles(t *testing.T) {
	h := NewHistogram()
	// 1..10000 uniformly: median should be ~5000 within bucket resolution.
	for i := 1; i <= 10000; i++ {
		h.Observe(float64(i))
	}
	if h.Count() != 10000 {
		t.Fatalf("Count = %d", h.Count())
	}
	if p := h.P50(); p < 4300 || p > 5800 {
		t.Fatalf("P50 = %v, want ~5000", p)
	}
	if p := h.P99(); p < 9000 || p > 11000 {
		t.Fatalf("P99 = %v, want ~9900", p)
	}
	if h.Min() != 1 || h.Max() != 10000 {
		t.Fatalf("Min/Max = %v/%v", h.Min(), h.Max())
	}
}

func TestHistogramEdgeQuantiles(t *testing.T) {
	h := NewHistogram()
	if h.Quantile(0.5) != 0 {
		t.Fatal("empty histogram quantile must be 0")
	}
	h.Observe(100)
	h.Observe(200)
	if h.Quantile(0) != 100 {
		t.Fatalf("q=0 should be min, got %v", h.Quantile(0))
	}
	if h.Quantile(1) != 200 {
		t.Fatalf("q=1 should be max, got %v", h.Quantile(1))
	}
}

func TestHistogramTinySamples(t *testing.T) {
	h := NewHistogram()
	h.Observe(0.25) // below the smallest bound
	if h.Count() != 1 {
		t.Fatalf("Count = %d", h.Count())
	}
	if q := h.Quantile(0.5); q > 1 {
		t.Fatalf("sub-minimum sample quantile = %v", q)
	}
}

func TestHistogramReset(t *testing.T) {
	h := NewHistogram()
	h.Observe(50)
	h.Reset()
	if h.Count() != 0 || h.Mean() != 0 {
		t.Fatal("Reset did not clear histogram")
	}
}

// Property: for constant streams the quantile lies within one bucket (±9%)
// of the constant.
func TestHistogramConstantStreamProperty(t *testing.T) {
	f := func(v uint32, n uint8) bool {
		x := float64(v%1000000) + 1
		h := NewHistogram()
		for i := 0; i < int(n)+1; i++ {
			h.Observe(x)
		}
		q := h.Quantile(0.5)
		return q >= x/1.1 && q <= x*1.1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestWelfordMerge(t *testing.T) {
	var a, b, whole Welford
	samples := []float64{2, 4, 4, 4, 5, 5, 7, 9, 1, 13, 0.5, 21}
	for i, x := range samples {
		whole.Observe(x)
		if i%2 == 0 {
			a.Observe(x)
		} else {
			b.Observe(x)
		}
	}
	a.Merge(&b)
	if a.Count() != whole.Count() {
		t.Fatalf("merged Count = %d, want %d", a.Count(), whole.Count())
	}
	if math.Abs(a.Mean()-whole.Mean()) > 1e-12 {
		t.Fatalf("merged Mean = %v, want %v", a.Mean(), whole.Mean())
	}
	if math.Abs(a.Variance()-whole.Variance()) > 1e-9 {
		t.Fatalf("merged Variance = %v, want %v", a.Variance(), whole.Variance())
	}
	if a.Min() != whole.Min() || a.Max() != whole.Max() {
		t.Fatalf("merged Min/Max = %v/%v, want %v/%v", a.Min(), a.Max(), whole.Min(), whole.Max())
	}
}

func TestWelfordMergeEmpty(t *testing.T) {
	var a, b Welford
	a.Observe(5)
	a.Merge(&b) // empty other: no-op
	if a.Count() != 1 || a.Mean() != 5 {
		t.Fatal("merging empty changed the accumulator")
	}
	b.Merge(&a) // empty receiver: adopts other
	if b.Count() != 1 || b.Mean() != 5 || b.Min() != 5 || b.Max() != 5 {
		t.Fatal("empty receiver did not adopt other")
	}
	a.Merge(nil)
	if a.Count() != 1 {
		t.Fatal("nil merge changed the accumulator")
	}
}

func TestHistogramMerge(t *testing.T) {
	a, b, whole := NewHistogram(), NewHistogram(), NewHistogram()
	for i := 1; i <= 10000; i++ {
		x := float64(i)
		whole.Observe(x)
		if i%2 == 0 {
			a.Observe(x)
		} else {
			b.Observe(x)
		}
	}
	a.Observe(0.25) // exercise the under-range bucket
	whole.Observe(0.25)
	a.Merge(b)
	if a.Count() != whole.Count() {
		t.Fatalf("merged Count = %d, want %d", a.Count(), whole.Count())
	}
	for _, q := range []float64{0, 0.5, 0.99, 1} {
		if got, want := a.Quantile(q), whole.Quantile(q); got != want {
			t.Fatalf("merged Quantile(%v) = %v, want %v", q, got, want)
		}
	}
	if math.Abs(a.Mean()-whole.Mean()) > 1e-9 {
		t.Fatalf("merged Mean = %v, want %v", a.Mean(), whole.Mean())
	}
}

func TestHistogramClone(t *testing.T) {
	h := NewHistogram()
	h.Observe(100)
	c := h.Clone()
	h.Observe(200)
	if c.Count() != 1 || c.Max() != 100 {
		t.Fatal("clone not independent of original")
	}
	if h.Count() != 2 {
		t.Fatal("original lost samples")
	}
}

func TestFormatBytes(t *testing.T) {
	cases := []struct {
		in   int64
		want string
	}{
		{512, "512 B"},
		{2048, "2.00 KiB"},
		{4 * 1024 * 1024 * 1024, "4.00 GiB"},
	}
	for _, c := range cases {
		if got := FormatBytes(c.in); got != c.want {
			t.Errorf("FormatBytes(%d) = %q, want %q", c.in, got, c.want)
		}
	}
}

func TestFormatCount(t *testing.T) {
	cases := []struct {
		in   int64
		want string
	}{
		{999, "999"},
		{1500, "1.50K"},
		{2500000, "2.50M"},
		{3000000000, "3.00G"},
	}
	for _, c := range cases {
		if got := FormatCount(c.in); got != c.want {
			t.Errorf("FormatCount(%d) = %q, want %q", c.in, got, c.want)
		}
	}
}

// A single-sample histogram's quantile estimates must collapse to that
// sample: the bucket midpoint of a sparse top (or bottom) bucket would
// otherwise exceed the observed max or undershoot the min, corrupting P99
// columns in exported series.
func TestQuantileClampedToObservedRange(t *testing.T) {
	h := NewHistogram()
	h.Observe(100)
	for _, q := range []float64{0.01, 0.25, 0.5, 0.9, 0.99} {
		if got := h.Quantile(q); got != 100 {
			t.Fatalf("single-sample Quantile(%v) = %v, want 100", q, got)
		}
	}
	// Sub-minimum bucket path: a sample below the first bound.
	lo := NewHistogram()
	lo.Observe(0.25)
	if got := lo.P50(); got != 0.25 {
		t.Fatalf("sub-range P50 = %v, want 0.25", got)
	}
}

func TestQuantileWithinRangeProperty(t *testing.T) {
	f := func(seed int64) bool {
		h := NewHistogram()
		x := float64(seed%100000) + 1
		h.Observe(x)
		h.Observe(x * 1.5)
		h.Observe(x * 7)
		for _, q := range []float64{0, 0.1, 0.5, 0.9, 0.99, 1} {
			v := h.Quantile(q)
			if v < h.Min() || v > h.Max() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Merging N split streams must be indistinguishable from observing one
// combined stream — the invariant the per-shard series merge relies on.
func TestSplitMergeMatchesCombined(t *testing.T) {
	const parts = 4
	samples := make([]float64, 0, 1000)
	v := 11.0
	for i := 0; i < 1000; i++ {
		v = math.Mod(v*1.618+3, 5e6) + 1
		samples = append(samples, v)
	}

	combined := NewHistogram()
	split := make([]*Histogram, parts)
	for i := range split {
		split[i] = NewHistogram()
	}
	var combinedW Welford
	splitW := make([]Welford, parts)
	var total int64
	partC := make([]Counter, parts)
	for i, x := range samples {
		combined.Observe(x)
		combinedW.Observe(x)
		split[i%parts].Observe(x)
		splitW[i%parts].Observe(x)
		partC[i%parts].Inc()
	}
	merged := NewHistogram()
	var mergedW Welford
	for i := range split {
		merged.Merge(split[i])
		mergedW.Merge(&splitW[i])
		total += partC[i].Value()
	}

	if total != combined.Count() || merged.Count() != combined.Count() {
		t.Fatalf("counts: counter sum %d, merged %d, combined %d", total, merged.Count(), combined.Count())
	}
	mb, cb := merged.CumulativeBuckets(), combined.CumulativeBuckets()
	if len(mb) != len(cb) {
		t.Fatalf("bucket layouts differ: %d vs %d", len(mb), len(cb))
	}
	for j := range mb {
		if mb[j] != cb[j] {
			t.Fatalf("bucket %d: merged %+v, combined %+v", j, mb[j], cb[j])
		}
	}
	if merged.Min() != combined.Min() || merged.Max() != combined.Max() {
		t.Fatalf("extremes: merged [%v, %v], combined [%v, %v]",
			merged.Min(), merged.Max(), combined.Min(), combined.Max())
	}
	if mergedW.Count() != combinedW.Count() {
		t.Fatalf("welford counts: %d vs %d", mergedW.Count(), combinedW.Count())
	}
	if d := math.Abs(mergedW.Mean() - combinedW.Mean()); d > 1e-6*math.Abs(combinedW.Mean()) {
		t.Fatalf("welford means diverge: %v vs %v", mergedW.Mean(), combinedW.Mean())
	}
	if d := math.Abs(mergedW.Variance() - combinedW.Variance()); d > 1e-6*combinedW.Variance() {
		t.Fatalf("welford variances diverge: %v vs %v", mergedW.Variance(), combinedW.Variance())
	}
	for _, q := range []float64{0.5, 0.9, 0.99} {
		if merged.Quantile(q) != combined.Quantile(q) {
			t.Fatalf("Quantile(%v): merged %v, combined %v", q, merged.Quantile(q), combined.Quantile(q))
		}
	}
}

func TestCumulativeBucketsShape(t *testing.T) {
	h := NewHistogram()
	if b := h.CumulativeBuckets(); b[len(b)-1].Count != 0 || !math.IsInf(b[len(b)-1].UpperBound, 1) {
		t.Fatalf("empty histogram tail bucket = %+v", b[len(b)-1])
	}
	h.Observe(10)
	h.Observe(1e9)
	b := h.CumulativeBuckets()
	prev := int64(0)
	for _, bk := range b {
		if bk.Count < prev {
			t.Fatalf("cumulative counts decreased at le=%v", bk.UpperBound)
		}
		prev = bk.Count
	}
	if b[len(b)-1].Count != 2 {
		t.Fatalf("tail count = %d, want 2", b[len(b)-1].Count)
	}
	if h.Sum() != 10+1e9 {
		t.Fatalf("Sum = %v", h.Sum())
	}
}
