package metrics

import (
	"math"
	"testing"
	"testing/quick"
)

func TestCounterBasics(t *testing.T) {
	var c Counter
	c.Add(5)
	c.Inc()
	if c.Value() != 6 {
		t.Fatalf("Value = %d, want 6", c.Value())
	}
	c.Reset()
	if c.Value() != 0 {
		t.Fatalf("after Reset, Value = %d", c.Value())
	}
}

func TestCounterRejectsNegative(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Add(-1) did not panic")
		}
	}()
	var c Counter
	c.Add(-1)
}

func TestWelfordMeanVariance(t *testing.T) {
	var w Welford
	for _, x := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		w.Observe(x)
	}
	if w.Count() != 8 {
		t.Fatalf("Count = %d", w.Count())
	}
	if w.Mean() != 5 {
		t.Fatalf("Mean = %v, want 5", w.Mean())
	}
	// Population variance of this classic set is 4; sample variance 32/7.
	if got, want := w.Variance(), 32.0/7.0; math.Abs(got-want) > 1e-12 {
		t.Fatalf("Variance = %v, want %v", got, want)
	}
	if w.Min() != 2 || w.Max() != 9 {
		t.Fatalf("Min/Max = %v/%v", w.Min(), w.Max())
	}
}

func TestWelfordEmptyAndSingle(t *testing.T) {
	var w Welford
	if w.Mean() != 0 || w.Variance() != 0 || w.Stddev() != 0 {
		t.Fatal("empty Welford must report zeros")
	}
	w.Observe(3)
	if w.Variance() != 0 {
		t.Fatalf("single-sample variance = %v", w.Variance())
	}
	if w.Mean() != 3 || w.Min() != 3 || w.Max() != 3 {
		t.Fatal("single-sample stats wrong")
	}
}

// Property: Welford mean always equals the arithmetic mean within float
// tolerance, and min/max bracket every sample.
func TestWelfordMatchesNaiveMean(t *testing.T) {
	f := func(samples []uint32) bool {
		if len(samples) == 0 {
			return true
		}
		var w Welford
		sum := 0.0
		for _, s := range samples {
			x := float64(s)
			w.Observe(x)
			sum += x
		}
		naive := sum / float64(len(samples))
		if math.Abs(w.Mean()-naive) > 1e-6*(1+math.Abs(naive)) {
			return false
		}
		return w.Min() <= naive && naive <= w.Max()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestHistogramQuantiles(t *testing.T) {
	h := NewHistogram()
	// 1..10000 uniformly: median should be ~5000 within bucket resolution.
	for i := 1; i <= 10000; i++ {
		h.Observe(float64(i))
	}
	if h.Count() != 10000 {
		t.Fatalf("Count = %d", h.Count())
	}
	if p := h.P50(); p < 4300 || p > 5800 {
		t.Fatalf("P50 = %v, want ~5000", p)
	}
	if p := h.P99(); p < 9000 || p > 11000 {
		t.Fatalf("P99 = %v, want ~9900", p)
	}
	if h.Min() != 1 || h.Max() != 10000 {
		t.Fatalf("Min/Max = %v/%v", h.Min(), h.Max())
	}
}

func TestHistogramEdgeQuantiles(t *testing.T) {
	h := NewHistogram()
	if h.Quantile(0.5) != 0 {
		t.Fatal("empty histogram quantile must be 0")
	}
	h.Observe(100)
	h.Observe(200)
	if h.Quantile(0) != 100 {
		t.Fatalf("q=0 should be min, got %v", h.Quantile(0))
	}
	if h.Quantile(1) != 200 {
		t.Fatalf("q=1 should be max, got %v", h.Quantile(1))
	}
}

func TestHistogramTinySamples(t *testing.T) {
	h := NewHistogram()
	h.Observe(0.25) // below the smallest bound
	if h.Count() != 1 {
		t.Fatalf("Count = %d", h.Count())
	}
	if q := h.Quantile(0.5); q > 1 {
		t.Fatalf("sub-minimum sample quantile = %v", q)
	}
}

func TestHistogramReset(t *testing.T) {
	h := NewHistogram()
	h.Observe(50)
	h.Reset()
	if h.Count() != 0 || h.Mean() != 0 {
		t.Fatal("Reset did not clear histogram")
	}
}

// Property: for constant streams the quantile lies within one bucket (±9%)
// of the constant.
func TestHistogramConstantStreamProperty(t *testing.T) {
	f := func(v uint32, n uint8) bool {
		x := float64(v%1000000) + 1
		h := NewHistogram()
		for i := 0; i < int(n)+1; i++ {
			h.Observe(x)
		}
		q := h.Quantile(0.5)
		return q >= x/1.1 && q <= x*1.1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestWelfordMerge(t *testing.T) {
	var a, b, whole Welford
	samples := []float64{2, 4, 4, 4, 5, 5, 7, 9, 1, 13, 0.5, 21}
	for i, x := range samples {
		whole.Observe(x)
		if i%2 == 0 {
			a.Observe(x)
		} else {
			b.Observe(x)
		}
	}
	a.Merge(&b)
	if a.Count() != whole.Count() {
		t.Fatalf("merged Count = %d, want %d", a.Count(), whole.Count())
	}
	if math.Abs(a.Mean()-whole.Mean()) > 1e-12 {
		t.Fatalf("merged Mean = %v, want %v", a.Mean(), whole.Mean())
	}
	if math.Abs(a.Variance()-whole.Variance()) > 1e-9 {
		t.Fatalf("merged Variance = %v, want %v", a.Variance(), whole.Variance())
	}
	if a.Min() != whole.Min() || a.Max() != whole.Max() {
		t.Fatalf("merged Min/Max = %v/%v, want %v/%v", a.Min(), a.Max(), whole.Min(), whole.Max())
	}
}

func TestWelfordMergeEmpty(t *testing.T) {
	var a, b Welford
	a.Observe(5)
	a.Merge(&b) // empty other: no-op
	if a.Count() != 1 || a.Mean() != 5 {
		t.Fatal("merging empty changed the accumulator")
	}
	b.Merge(&a) // empty receiver: adopts other
	if b.Count() != 1 || b.Mean() != 5 || b.Min() != 5 || b.Max() != 5 {
		t.Fatal("empty receiver did not adopt other")
	}
	a.Merge(nil)
	if a.Count() != 1 {
		t.Fatal("nil merge changed the accumulator")
	}
}

func TestHistogramMerge(t *testing.T) {
	a, b, whole := NewHistogram(), NewHistogram(), NewHistogram()
	for i := 1; i <= 10000; i++ {
		x := float64(i)
		whole.Observe(x)
		if i%2 == 0 {
			a.Observe(x)
		} else {
			b.Observe(x)
		}
	}
	a.Observe(0.25) // exercise the under-range bucket
	whole.Observe(0.25)
	a.Merge(b)
	if a.Count() != whole.Count() {
		t.Fatalf("merged Count = %d, want %d", a.Count(), whole.Count())
	}
	for _, q := range []float64{0, 0.5, 0.99, 1} {
		if got, want := a.Quantile(q), whole.Quantile(q); got != want {
			t.Fatalf("merged Quantile(%v) = %v, want %v", q, got, want)
		}
	}
	if math.Abs(a.Mean()-whole.Mean()) > 1e-9 {
		t.Fatalf("merged Mean = %v, want %v", a.Mean(), whole.Mean())
	}
}

func TestHistogramClone(t *testing.T) {
	h := NewHistogram()
	h.Observe(100)
	c := h.Clone()
	h.Observe(200)
	if c.Count() != 1 || c.Max() != 100 {
		t.Fatal("clone not independent of original")
	}
	if h.Count() != 2 {
		t.Fatal("original lost samples")
	}
}

func TestFormatBytes(t *testing.T) {
	cases := []struct {
		in   int64
		want string
	}{
		{512, "512 B"},
		{2048, "2.00 KiB"},
		{4 * 1024 * 1024 * 1024, "4.00 GiB"},
	}
	for _, c := range cases {
		if got := FormatBytes(c.in); got != c.want {
			t.Errorf("FormatBytes(%d) = %q, want %q", c.in, got, c.want)
		}
	}
}

func TestFormatCount(t *testing.T) {
	cases := []struct {
		in   int64
		want string
	}{
		{999, "999"},
		{1500, "1.50K"},
		{2500000, "2.50M"},
		{3000000000, "3.00G"},
	}
	for _, c := range cases {
		if got := FormatCount(c.in); got != c.want {
			t.Errorf("FormatCount(%d) = %q, want %q", c.in, got, c.want)
		}
	}
}
