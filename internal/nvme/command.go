// Package nvme models the NVMe key-value command set as BandSlim extends it:
// 64-byte submission entries with a dword-accurate field layout, the two
// piggybacking command formats of Fig. 6 (35 usable bytes in the write
// command, 56 in the transfer command), PRP lists, and submission/completion
// queue rings with doorbell registers.
package nvme

import (
	"encoding/binary"
	"fmt"
)

// Opcode identifies a key-value command.
type Opcode byte

// Key-value command set opcodes. Values are from the vendor-specific range;
// only their distinctness matters to the simulation.
const (
	OpInvalid Opcode = 0x00
	// OpKVWrite is the initial write command: key, metadata, and up to
	// PiggybackWriteCapacity inline value bytes (Fig. 6a).
	OpKVWrite Opcode = 0x81
	// OpKVTransfer is the trailing command carrying up to
	// PiggybackTransferCapacity more value bytes (Fig. 6b).
	OpKVTransfer Opcode = 0x82
	// OpKVRead retrieves a value by key via PRP-described host pages.
	OpKVRead Opcode = 0x83
	// OpKVDelete removes a key.
	OpKVDelete Opcode = 0x84
	// OpKVSeek positions a device-side iterator at the first key >= the
	// command key.
	OpKVSeek Opcode = 0x85
	// OpKVNext returns the next key-value pair from the device-side
	// iterator.
	OpKVNext Opcode = 0x86
	// OpKVFlush forces the MemTable and NAND page buffer to NAND.
	OpKVFlush Opcode = 0x87
	// OpKVBatchWrite delivers multiple key-value records in one PRP
	// payload — the host-side batching approach of Dotori/KV-CSD the
	// paper contrasts with (§2: bulk PUT risks data loss on power failure
	// and costs the device an unpacking pass).
	OpKVBatchWrite Opcode = 0x88
	// OpKVCompact runs WiscKey-style vLog garbage collection: live values
	// in the oldest N pages (valueSize field) relocate to the log head and
	// the pages are reclaimed.
	OpKVCompact Opcode = 0x89
	// OpAdminIdentify returns the controller's 4 KiB identify structure —
	// the device-management utility NVMe compatibility preserves (§1).
	OpAdminIdentify Opcode = 0x06
)

func (o Opcode) String() string {
	switch o {
	case OpKVWrite:
		return "KVWrite"
	case OpKVTransfer:
		return "KVTransfer"
	case OpKVRead:
		return "KVRead"
	case OpKVDelete:
		return "KVDelete"
	case OpKVSeek:
		return "KVSeek"
	case OpKVNext:
		return "KVNext"
	case OpKVFlush:
		return "KVFlush"
	case OpKVBatchWrite:
		return "KVBatchWrite"
	case OpKVCompact:
		return "KVCompact"
	case OpAdminIdentify:
		return "AdminIdentify"
	default:
		return fmt.Sprintf("Opcode(0x%02x)", byte(o))
	}
}

// Sizes fixed by the NVMe specification and the BandSlim command layout.
const (
	// CommandSize is the size of a submission queue entry.
	CommandSize = 64
	// MaxKeySize is the NVMe KV command set's inline key capacity
	// (dwords 2-3 and 14-15).
	MaxKeySize = 16
	// PiggybackWriteCapacity is the inline value capacity of the write
	// command: dword4-9 (24 B) + 3 spare bytes of dword11 + dword12-13
	// (8 B) = 35 B (§3.2).
	PiggybackWriteCapacity = 35
	// PiggybackTransferCapacity is the inline value capacity of the
	// transfer command: every dword except dword0 (opcode/flags/ID) and
	// dword1 (namespace) = 56 B (§3.2).
	PiggybackTransferCapacity = 56
)

// Byte offsets of the command fields (dword n occupies bytes 4n..4n+3).
const (
	offOpcode    = 0  // dword0 byte 0
	offFlags     = 1  // dword0 byte 1: P/F flags
	offCommandID = 2  // dword0 bytes 2-3
	offNamespace = 4  // dword1
	offKeyLow    = 8  // dword2-3: key[0:8]
	offMeta      = 16 // dword4-5: metadata pointer (PRP)
	offPRP1      = 24 // dword6-7
	offPRP2      = 32 // dword8-9
	offValueSize = 40 // dword10
	offKeySize   = 44 // dword11 byte 0
	offDw11Spare = 45 // dword11 bytes 1-3 (reserved ×2 + option)
	offReserved  = 48 // dword12-13
	offKeyHigh   = 56 // dword14-15: key[8:16]
)

// Command is one 64-byte NVMe submission queue entry. The zero value is an
// empty (invalid) command.
type Command struct {
	raw [CommandSize]byte
}

// Raw exposes the wire image of the command.
func (c *Command) Raw() [CommandSize]byte { return c.raw }

// SetOpcode stores the opcode in dword0.
func (c *Command) SetOpcode(o Opcode) { c.raw[offOpcode] = byte(o) }

// Opcode reads the opcode from dword0.
func (c *Command) Opcode() Opcode { return Opcode(c.raw[offOpcode]) }

// TransferMode describes how a write command's value payload travels,
// encoded in the dword0 flags byte (the analog of NVMe's PSDT field, which
// likewise selects PRP vs. SGL). dword0 is never repurposed for
// piggybacking, so the flag survives inline transfers.
type TransferMode byte

// Transfer modes of §3.2.
const (
	// ModePRP: the value travels by PRP-described page-unit DMA (baseline).
	ModePRP TransferMode = 0
	// ModeInline: the value is piggybacked in command fields; values larger
	// than the write command's capacity continue in transfer commands.
	ModeInline TransferMode = 1
	// ModeHybrid: the page-aligned head travels by DMA, the tail is
	// piggybacked in trailing transfer commands.
	ModeHybrid TransferMode = 2
	// ModeSGL: the value travels by Scatter-Gather List — exact bytes on
	// the wire but with the setup cost that makes SGL uneconomical below
	// ~32 KB (§2.5). Provided as the comparator the paper rules out.
	ModeSGL TransferMode = 3
)

func (m TransferMode) String() string {
	switch m {
	case ModePRP:
		return "PRP"
	case ModeInline:
		return "Inline"
	case ModeHybrid:
		return "Hybrid"
	case ModeSGL:
		return "SGL"
	default:
		return fmt.Sprintf("TransferMode(%d)", byte(m))
	}
}

// SetTransferMode stores the payload transfer mode in the flags byte.
func (c *Command) SetTransferMode(m TransferMode) { c.raw[offFlags] = byte(m) }

// TransferMode reads the payload transfer mode.
func (c *Command) TransferMode() TransferMode { return TransferMode(c.raw[offFlags]) }

// SetCommandID stores the 16-bit command identifier.
func (c *Command) SetCommandID(id uint16) {
	binary.LittleEndian.PutUint16(c.raw[offCommandID:], id)
}

// CommandID reads the 16-bit command identifier.
func (c *Command) CommandID() uint16 {
	return binary.LittleEndian.Uint16(c.raw[offCommandID:])
}

// SetNamespace stores the namespace ID.
func (c *Command) SetNamespace(ns uint32) {
	binary.LittleEndian.PutUint32(c.raw[offNamespace:], ns)
}

// Namespace reads the namespace ID.
func (c *Command) Namespace() uint32 {
	return binary.LittleEndian.Uint32(c.raw[offNamespace:])
}

// SetKey stores a key of up to MaxKeySize bytes across dwords 2-3 and 14-15
// and records its length in dword11. Longer keys are an error.
func (c *Command) SetKey(key []byte) error {
	if len(key) > MaxKeySize {
		return fmt.Errorf("nvme: key length %d exceeds %d", len(key), MaxKeySize)
	}
	for i := range c.raw[offKeyLow : offKeyLow+8] {
		c.raw[offKeyLow+i] = 0
	}
	for i := range c.raw[offKeyHigh : offKeyHigh+8] {
		c.raw[offKeyHigh+i] = 0
	}
	low := key
	if len(low) > 8 {
		low = key[:8]
		copy(c.raw[offKeyHigh:], key[8:])
	}
	copy(c.raw[offKeyLow:], low)
	c.raw[offKeySize] = byte(len(key))
	return nil
}

// Key reads the key back using the recorded key size.
func (c *Command) Key() []byte {
	return c.AppendKey(nil)
}

// AppendKey appends the command's key to dst and returns the extended slice —
// the allocation-free reader the device's hot path uses with a reusable
// scratch buffer (AppendKey(scratch[:0])).
func (c *Command) AppendKey(dst []byte) []byte {
	n := int(c.raw[offKeySize])
	if n > MaxKeySize {
		n = MaxKeySize
	}
	low := n
	if low > 8 {
		low = 8
	}
	dst = append(dst, c.raw[offKeyLow:offKeyLow+low]...)
	if n > 8 {
		dst = append(dst, c.raw[offKeyHigh:offKeyHigh+n-8]...)
	}
	return dst
}

// KeySize reads the recorded key length.
func (c *Command) KeySize() int { return int(c.raw[offKeySize]) }

// SetValueSize stores the total value size in dword10.
func (c *Command) SetValueSize(n uint32) {
	binary.LittleEndian.PutUint32(c.raw[offValueSize:], n)
}

// ValueSize reads the total value size.
func (c *Command) ValueSize() uint32 {
	return binary.LittleEndian.Uint32(c.raw[offValueSize:])
}

// SetPRP1 stores the first PRP entry (dword6-7).
func (c *Command) SetPRP1(addr uint64) {
	binary.LittleEndian.PutUint64(c.raw[offPRP1:], addr)
}

// PRP1 reads the first PRP entry.
func (c *Command) PRP1() uint64 { return binary.LittleEndian.Uint64(c.raw[offPRP1:]) }

// SetPRP2 stores the second PRP entry (dword8-9): either the second page or
// a pointer to a PRP list when the payload spans more than two pages.
func (c *Command) SetPRP2(addr uint64) {
	binary.LittleEndian.PutUint64(c.raw[offPRP2:], addr)
}

// PRP2 reads the second PRP entry.
func (c *Command) PRP2() uint64 { return binary.LittleEndian.Uint64(c.raw[offPRP2:]) }

// writePiggybackRegions lists the (offset, length) spans a write command may
// repurpose for inline value bytes, in shipping order.
var writePiggybackRegions = [...]struct{ off, n int }{
	{offMeta, 8},      // dword4-5: metadata pointer
	{offPRP1, 8},      // dword6-7
	{offPRP2, 8},      // dword8-9
	{offDw11Spare, 3}, // dword11 spare bytes
	{offReserved, 8},  // dword12-13
}

// SetWritePiggyback embeds up to PiggybackWriteCapacity bytes of the value
// into the write command's repurposed fields and reports how many were
// embedded. Using these fields forfeits PRP transfer for this command.
func (c *Command) SetWritePiggyback(value []byte) int {
	n := 0
	for _, r := range writePiggybackRegions {
		if n >= len(value) {
			break
		}
		n += copy(c.raw[r.off:r.off+r.n], value[n:])
	}
	return n
}

// WritePiggyback extracts n inline bytes from a write command.
func (c *Command) WritePiggyback(n int) []byte {
	return c.AppendWritePiggyback(nil, n)
}

// AppendWritePiggyback appends n inline bytes from a write command to dst and
// returns the extended slice; the device reassembles values directly into its
// pending-write scratch buffer this way, with no intermediate slice.
func (c *Command) AppendWritePiggyback(dst []byte, n int) []byte {
	if n > PiggybackWriteCapacity {
		n = PiggybackWriteCapacity
	}
	got := 0
	for _, r := range writePiggybackRegions {
		if got >= n {
			break
		}
		take := n - got
		if take > r.n {
			take = r.n
		}
		dst = append(dst, c.raw[r.off:r.off+take]...)
		got += take
	}
	return dst
}

// SetTransferPiggyback embeds up to PiggybackTransferCapacity bytes into a
// transfer command (all dwords except dword0-1) and reports how many fit.
func (c *Command) SetTransferPiggyback(fragment []byte) int {
	return copy(c.raw[offKeyLow:], fragment)
}

// TransferPiggyback extracts n inline bytes from a transfer command.
func (c *Command) TransferPiggyback(n int) []byte {
	return c.AppendTransferPiggyback(nil, n)
}

// AppendTransferPiggyback appends n inline bytes from a transfer command to
// dst and returns the extended slice (the allocation-free variant).
func (c *Command) AppendTransferPiggyback(dst []byte, n int) []byte {
	if n > PiggybackTransferCapacity {
		n = PiggybackTransferCapacity
	}
	return append(dst, c.raw[offKeyLow:offKeyLow+n]...)
}

// TransferCommandsFor reports how many NVMe commands a pure piggybacking
// transfer of an n-byte value needs: one write command plus enough trailing
// transfer commands for the remainder (§3.2).
func TransferCommandsFor(n int) int {
	if n <= PiggybackWriteCapacity {
		return 1
	}
	rest := n - PiggybackWriteCapacity
	return 1 + (rest+PiggybackTransferCapacity-1)/PiggybackTransferCapacity
}
