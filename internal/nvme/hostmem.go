package nvme

import (
	"fmt"

	"bandslim/internal/pcie"
)

// HostMemory models the pinned DMA-able host memory the driver stages values
// in. Pages are addressed by synthetic 4 KiB-aligned physical addresses so
// PRP entries look and behave like the real thing (page-aligned, one page
// each). The backing store is real bytes, so values round-trip through the
// simulated DMA engine intact.
type HostMemory struct {
	pages map[uint64][]byte
	next  uint64
}

// NewHostMemory returns an empty host memory arena.
func NewHostMemory() *HostMemory {
	return &HostMemory{pages: make(map[uint64][]byte), next: 0x1000}
}

// AllocPage allocates one pinned 4 KiB page and returns its address.
func (m *HostMemory) AllocPage() uint64 {
	addr := m.next
	m.next += pcie.MemoryPageSize
	m.pages[addr] = make([]byte, pcie.MemoryPageSize)
	return addr
}

// FreePage releases a page. Freeing an unknown address panics: that is a
// driver bug, not a runtime condition.
func (m *HostMemory) FreePage(addr uint64) {
	if _, ok := m.pages[addr]; !ok {
		panic(fmt.Sprintf("nvme: FreePage of unmapped address %#x", addr))
	}
	delete(m.pages, addr)
}

// Page returns the backing bytes of a page for reading or writing.
func (m *HostMemory) Page(addr uint64) ([]byte, error) {
	p, ok := m.pages[addr]
	if !ok {
		return nil, fmt.Errorf("nvme: access to unmapped host page %#x", addr)
	}
	return p, nil
}

// LivePages reports how many pages are currently mapped (leak detection in
// tests).
func (m *HostMemory) LivePages() int { return len(m.pages) }

// PRPList describes a payload in host memory as a list of page addresses,
// exactly as the PRP mechanism does: the payload occupies each listed page
// from its start, and only the last page may be partially used.
type PRPList struct {
	Pages   []uint64
	Payload int // payload size in bytes
}

// BuildPRP stages value into freshly allocated host pages and returns the
// PRP list describing it. An empty value yields an empty list.
func BuildPRP(m *HostMemory, value []byte) (PRPList, error) {
	var l PRPList
	l.Payload = len(value)
	for off := 0; off < len(value); off += pcie.MemoryPageSize {
		addr := m.AllocPage()
		page, err := m.Page(addr)
		if err != nil {
			return PRPList{}, err
		}
		end := off + pcie.MemoryPageSize
		if end > len(value) {
			end = len(value)
		}
		copy(page, value[off:end])
		l.Pages = append(l.Pages, addr)
	}
	return l, nil
}

// Free releases every page in the list.
func (l PRPList) Free(m *HostMemory) {
	for _, p := range l.Pages {
		m.FreePage(p)
	}
}

// TransferSize reports the number of bytes a page-unit DMA of this list
// moves: full pages, regardless of how much of the last page the payload
// uses. This is the traffic bloat of §2.3 Problem #1.
func (l PRPList) TransferSize() int {
	return len(l.Pages) * pcie.MemoryPageSize
}

// AllocStaging allocates a persistent staging region of n bytes (rounded up
// to whole pages) and returns its PRP list. The pages are freshly allocated
// in one run, so their addresses are consecutive — the property the device's
// PRP reconstruction relies on. The driver allocates one such region per
// stack at first use and reuses it for every operation, which is what makes
// the per-op path free of host-memory churn; WithPayload derives the per-op
// view.
func AllocStaging(m *HostMemory, n int) PRPList {
	var l PRPList
	l.Payload = n
	for off := 0; off < n; off += pcie.MemoryPageSize {
		l.Pages = append(l.Pages, m.AllocPage())
	}
	return l
}

// WithPayload returns a view of the list describing the first n staged bytes:
// the page run is shared, only the payload length differs. n beyond the
// region's page capacity panics — that is a driver sizing bug.
func (l PRPList) WithPayload(n int) PRPList {
	if n > len(l.Pages)*pcie.MemoryPageSize {
		panic(fmt.Sprintf("nvme: payload %d exceeds staging capacity %d", n, len(l.Pages)*pcie.MemoryPageSize))
	}
	pages := (n + pcie.MemoryPageSize - 1) / pcie.MemoryPageSize
	return PRPList{Pages: l.Pages[:pages], Payload: n}
}

// Gather copies the payload out of host memory (device-side view after DMA).
func (l PRPList) Gather(m *HostMemory) ([]byte, error) {
	out := make([]byte, 0, l.Payload)
	remain := l.Payload
	for _, addr := range l.Pages {
		page, err := m.Page(addr)
		if err != nil {
			return nil, err
		}
		take := remain
		if take > len(page) {
			take = len(page)
		}
		out = append(out, page[:take]...)
		remain -= take
	}
	if remain != 0 {
		return nil, fmt.Errorf("nvme: PRP list short by %d bytes", remain)
	}
	return out, nil
}

// GatherInto appends the payload to dst and returns the extended slice — the
// allocation-free Gather the driver's read path uses with its reusable
// staging buffer (GatherInto(m, buf[:0])).
func (l PRPList) GatherInto(m *HostMemory, dst []byte) ([]byte, error) {
	remain := l.Payload
	for _, addr := range l.Pages {
		page, err := m.Page(addr)
		if err != nil {
			return nil, err
		}
		take := remain
		if take > len(page) {
			take = len(page)
		}
		dst = append(dst, page[:take]...)
		remain -= take
	}
	if remain != 0 {
		return nil, fmt.Errorf("nvme: PRP list short by %d bytes", remain)
	}
	return dst, nil
}

// Scatter copies data into the pages of the list (device-to-host direction,
// used by reads). data longer than the list's capacity is an error.
func (l PRPList) Scatter(m *HostMemory, data []byte) error {
	if len(data) > l.TransferSize() {
		return fmt.Errorf("nvme: scatter of %d bytes into %d-byte PRP list", len(data), l.TransferSize())
	}
	off := 0
	for _, addr := range l.Pages {
		if off >= len(data) {
			break
		}
		page, err := m.Page(addr)
		if err != nil {
			return err
		}
		off += copy(page, data[off:])
	}
	return nil
}
