package nvme

import (
	"errors"
	"fmt"

	"bandslim/internal/sim"
	"bandslim/internal/trace"
)

// Status is a completion status code.
type Status uint16

// Completion status codes used by the simulated controller.
const (
	StatusSuccess      Status = 0x0
	StatusInvalidField Status = 0x2
	StatusTransient    Status = 0x4  // data transfer error; retryable
	StatusPowerLoss    Status = 0x5  // commands aborted due to power loss
	StatusKeyNotFound  Status = 0x87 // KV command set: key does not exist
	StatusCapacity     Status = 0x81 // device capacity exceeded
	StatusInternal     Status = 0x6
	StatusMedia        Status = 0x281 // unrecovered media error (NAND)
	StatusIterEnd      Status = 0x93  // device-side iterator exhausted
)

func (s Status) String() string {
	switch s {
	case StatusSuccess:
		return "Success"
	case StatusInvalidField:
		return "InvalidField"
	case StatusTransient:
		return "TransferError"
	case StatusPowerLoss:
		return "PowerLoss"
	case StatusKeyNotFound:
		return "KeyNotFound"
	case StatusCapacity:
		return "CapacityExceeded"
	case StatusInternal:
		return "InternalError"
	case StatusMedia:
		return "MediaError"
	case StatusIterEnd:
		return "IteratorEnd"
	default:
		return fmt.Sprintf("Status(0x%x)", uint16(s))
	}
}

// Retryable reports whether resubmitting the command may succeed: true only
// for transient transfer errors. Media errors need the FTL's redirection
// (already attempted device-side), and power loss needs a mount.
func (s Status) Retryable() bool { return s == StatusTransient }

// StatusError is the error a non-success completion converts to. It wraps
// the status so callers can classify failures with StatusOf / errors.As
// instead of string matching.
type StatusError struct {
	Status Status
}

func (e *StatusError) Error() string {
	return fmt.Sprintf("nvme: command failed: %s", e.Status)
}

// StatusOf extracts the NVMe status from an error chain, if any. The
// unwrapped case is a direct type assertion so steady-state miss
// classification (the negative-cache hit path) allocates nothing;
// errors.As, which boxes its target, only runs for wrapped chains.
func StatusOf(err error) (Status, bool) {
	if se, ok := err.(*StatusError); ok {
		return se.Status, true
	}
	var se *StatusError
	if errors.As(err, &se) {
		return se.Status, true
	}
	return StatusSuccess, false
}

// Err converts a status into a Go error (nil for success).
func (s Status) Err() error {
	if s == StatusSuccess {
		return nil
	}
	return &StatusError{Status: s}
}

// Completion is one completion queue entry (16 bytes on the wire).
type Completion struct {
	CommandID uint16
	Status    Status
	SQHead    uint16
	// Result carries a command-specific 32-bit result (e.g. the value size
	// of a read, so short reads are visible to the driver).
	Result uint32
	// Ready is simulation bookkeeping, not wire content: the simulated time
	// the controller posted this entry. ProcessPending stamps it with the
	// command's device-work end; ProcessWindow additionally quantizes it onto
	// the coalescing grid, so the host can advance its clock to each
	// completion's arrival out of order and the trace layer can expose the
	// post time as a latency-attribution boundary.
	Ready sim.Time
}

// Queue-ring errors.
var (
	ErrQueueFull  = errors.New("nvme: submission queue full")
	ErrQueueEmpty = errors.New("nvme: queue empty")
)

// SubmissionQueue is a fixed-size command ring with a tail doorbell written
// by the host and a head advanced by the controller fetching entries.
type SubmissionQueue struct {
	entries []Command
	head    uint16 // consumer (controller)
	tail    uint16 // producer (host)
	dbTail  uint16 // last doorbell value the controller observed
	clock   *sim.Clock
	tr      trace.Tracer
}

// NewSubmissionQueue returns a ring with the given number of slots.
// Size must be at least 2 (one slot is sacrificed to distinguish full/empty).
func NewSubmissionQueue(size int) *SubmissionQueue {
	if size < 2 {
		panic("nvme: submission queue size must be >= 2")
	}
	return &SubmissionQueue{entries: make([]Command, size)}
}

// Size reports the ring capacity in slots.
func (q *SubmissionQueue) Size() int { return len(q.entries) }

func (q *SubmissionQueue) next(i uint16) uint16 {
	return uint16((int(i) + 1) % len(q.entries))
}

// Push places a command at the tail. The host must still ring the doorbell
// for the controller to see it.
func (q *SubmissionQueue) Push(c Command) error {
	if q.next(q.tail) == q.head {
		return ErrQueueFull
	}
	q.entries[q.tail] = c
	q.tail = q.next(q.tail)
	if q.tr != nil {
		now := q.clock.Now()
		q.tr.Emit(trace.Event{Cat: trace.CatNVMe, Name: trace.EvSQPush, Op: byte(c.Opcode()), Start: now, End: now, Arg: int64(c.CommandID())})
	}
	return nil
}

// RingDoorbell publishes the current tail to the controller, as the MMIO
// doorbell write does in hardware. It returns the doorbell value written.
func (q *SubmissionQueue) RingDoorbell() uint16 {
	q.dbTail = q.tail
	return q.dbTail
}

// Pending reports how many published commands await fetching.
func (q *SubmissionQueue) Pending() int {
	d := int(q.dbTail) - int(q.head)
	if d < 0 {
		d += len(q.entries)
	}
	return d
}

// Fetch removes and returns the command at the head. It fails with
// ErrQueueEmpty if no published commands remain (entries pushed but not yet
// doorbell-published are invisible, as in hardware).
func (q *SubmissionQueue) Fetch() (Command, error) {
	if q.head == q.dbTail {
		return Command{}, ErrQueueEmpty
	}
	c := q.entries[q.head]
	q.head = q.next(q.head)
	if q.tr != nil {
		now := q.clock.Now()
		q.tr.Emit(trace.Event{Cat: trace.CatNVMe, Name: trace.EvSQFetch, Op: byte(c.Opcode()), Start: now, End: now, Arg: int64(c.CommandID())})
	}
	return c, nil
}

// Head reports the controller's head index (reported back in completions).
func (q *SubmissionQueue) Head() uint16 { return q.head }

// CompletionQueue is a fixed-size completion ring with a head doorbell
// written by the host after reaping entries.
type CompletionQueue struct {
	entries []Completion
	head    uint16 // consumer (host)
	tail    uint16 // producer (controller)
	clock   *sim.Clock
	tr      trace.Tracer
}

// NewCompletionQueue returns a ring with the given number of slots.
func NewCompletionQueue(size int) *CompletionQueue {
	if size < 2 {
		panic("nvme: completion queue size must be >= 2")
	}
	return &CompletionQueue{entries: make([]Completion, size)}
}

// Size reports the ring capacity in slots.
func (q *CompletionQueue) Size() int { return len(q.entries) }

func (q *CompletionQueue) next(i uint16) uint16 {
	return uint16((int(i) + 1) % len(q.entries))
}

// Post places a completion at the tail. The trace event is stamped with the
// completion's Ready time when the controller set one — the instant the
// entry became visible to the host, which span reconstruction uses as the
// coalescing-delay boundary — falling back to the host clock otherwise.
func (q *CompletionQueue) Post(c Completion) error {
	if q.next(q.tail) == q.head {
		return ErrQueueFull
	}
	q.entries[q.tail] = c
	q.tail = q.next(q.tail)
	if q.tr != nil {
		at := c.Ready
		if at == 0 {
			at = q.clock.Now()
		}
		q.tr.Emit(trace.Event{Cat: trace.CatNVMe, Name: trace.EvCQPost, Start: at, End: at, Arg: int64(c.CommandID)})
	}
	return nil
}

// Reap removes and returns the completion at the head. The host must still
// ring the head doorbell to release the slot to the controller; in this
// model Reap releases it and RingDoorbell only accounts for the MMIO write.
func (q *CompletionQueue) Reap() (Completion, error) {
	if q.head == q.tail {
		return Completion{}, ErrQueueEmpty
	}
	c := q.entries[q.head]
	q.head = q.next(q.head)
	if q.tr != nil {
		now := q.clock.Now()
		q.tr.Emit(trace.Event{Cat: trace.CatNVMe, Name: trace.EvCQReap, Start: now, End: now, Arg: int64(c.CommandID)})
	}
	return c, nil
}

// Pending reports how many completions await reaping.
func (q *CompletionQueue) Pending() int {
	d := int(q.tail) - int(q.head)
	if d < 0 {
		d += len(q.entries)
	}
	return d
}

// RingDoorbell publishes the host's head index (the MMIO write the paper's
// MMIO ledger counts). It returns the doorbell value.
func (q *CompletionQueue) RingDoorbell() uint16 { return q.head }

// QueuePair bundles one SQ and its CQ, as the driver allocates them.
type QueuePair struct {
	SQ *SubmissionQueue
	CQ *CompletionQueue
}

// NewQueuePair returns an SQ/CQ pair of the given depth.
func NewQueuePair(depth int) *QueuePair {
	return &QueuePair{
		SQ: NewSubmissionQueue(depth),
		CQ: NewCompletionQueue(depth),
	}
}

// Attach enables ring-transition tracing on both queues, stamping events
// with the clock's simulated time. A nil tracer turns tracing back off.
func (qp *QueuePair) Attach(clock *sim.Clock, tr trace.Tracer) {
	qp.SQ.clock, qp.SQ.tr = clock, tr
	qp.CQ.clock, qp.CQ.tr = clock, tr
}
