package nvme

import (
	"bytes"
	"testing"
	"testing/quick"
)

func TestOpcodeRoundTrip(t *testing.T) {
	var c Command
	c.SetOpcode(OpKVWrite)
	if c.Opcode() != OpKVWrite {
		t.Fatalf("Opcode = %v", c.Opcode())
	}
}

func TestOpcodeStrings(t *testing.T) {
	ops := map[Opcode]string{
		OpKVWrite: "KVWrite", OpKVTransfer: "KVTransfer", OpKVRead: "KVRead",
		OpKVDelete: "KVDelete", OpKVSeek: "KVSeek", OpKVNext: "KVNext",
		OpKVFlush: "KVFlush", Opcode(0x11): "Opcode(0x11)",
	}
	for op, want := range ops {
		if got := op.String(); got != want {
			t.Errorf("%v.String() = %q, want %q", byte(op), got, want)
		}
	}
}

func TestCommandIDAndNamespace(t *testing.T) {
	var c Command
	c.SetCommandID(0xBEEF)
	c.SetNamespace(42)
	if c.CommandID() != 0xBEEF {
		t.Fatalf("CommandID = %#x", c.CommandID())
	}
	if c.Namespace() != 42 {
		t.Fatalf("Namespace = %d", c.Namespace())
	}
}

func TestKeyRoundTripShort(t *testing.T) {
	var c Command
	key := []byte{0xDE, 0xAD, 0xBE, 0xEF}
	if err := c.SetKey(key); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(c.Key(), key) {
		t.Fatalf("Key = %x, want %x", c.Key(), key)
	}
	if c.KeySize() != 4 {
		t.Fatalf("KeySize = %d", c.KeySize())
	}
}

func TestKeyRoundTripLong(t *testing.T) {
	var c Command
	key := []byte("0123456789abcdef") // 16 bytes spans dword2-3 and dword14-15
	if err := c.SetKey(key); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(c.Key(), key) {
		t.Fatalf("Key = %q", c.Key())
	}
}

func TestKeyTooLong(t *testing.T) {
	var c Command
	if err := c.SetKey(make([]byte, 17)); err == nil {
		t.Fatal("17-byte key accepted")
	}
}

func TestKeyOverwriteClearsOldBytes(t *testing.T) {
	var c Command
	if err := c.SetKey([]byte("0123456789abcdef")); err != nil {
		t.Fatal(err)
	}
	if err := c.SetKey([]byte("xy")); err != nil {
		t.Fatal(err)
	}
	if got := c.Key(); !bytes.Equal(got, []byte("xy")) {
		t.Fatalf("Key after overwrite = %q", got)
	}
}

func TestValueSizeAndPRP(t *testing.T) {
	var c Command
	c.SetValueSize(123456)
	c.SetPRP1(0xAAAA000)
	c.SetPRP2(0xBBBB000)
	if c.ValueSize() != 123456 {
		t.Fatalf("ValueSize = %d", c.ValueSize())
	}
	if c.PRP1() != 0xAAAA000 || c.PRP2() != 0xBBBB000 {
		t.Fatalf("PRP = %#x/%#x", c.PRP1(), c.PRP2())
	}
}

// The write command must embed exactly 35 bytes (Fig. 6a): 24 from dword4-9,
// 3 from dword11's spare bytes, 8 from dword12-13.
func TestWritePiggybackCapacityIs35(t *testing.T) {
	var c Command
	value := make([]byte, 100)
	for i := range value {
		value[i] = byte(i + 1)
	}
	n := c.SetWritePiggyback(value)
	if n != PiggybackWriteCapacity && n != 35 {
		t.Fatalf("embedded %d bytes, want 35", n)
	}
	if got := c.WritePiggyback(n); !bytes.Equal(got, value[:35]) {
		t.Fatalf("extracted %x, want %x", got, value[:35])
	}
}

// Piggybacked value bytes must not clobber key, opcode, command ID, key size
// or value size fields.
func TestWritePiggybackPreservesEssentialFields(t *testing.T) {
	var c Command
	c.SetOpcode(OpKVWrite)
	c.SetCommandID(7)
	c.SetNamespace(1)
	key := []byte{1, 2, 3, 4}
	if err := c.SetKey(key); err != nil {
		t.Fatal(err)
	}
	c.SetValueSize(999)
	payload := bytes.Repeat([]byte{0xFF}, 35)
	c.SetWritePiggyback(payload)
	if c.Opcode() != OpKVWrite || c.CommandID() != 7 || c.Namespace() != 1 {
		t.Fatal("dword0/1 corrupted by piggybacking")
	}
	if !bytes.Equal(c.Key(), key) {
		t.Fatalf("key corrupted: %x", c.Key())
	}
	if c.ValueSize() != 999 {
		t.Fatalf("value size corrupted: %d", c.ValueSize())
	}
	if got := c.WritePiggyback(35); !bytes.Equal(got, payload) {
		t.Fatal("payload corrupted by field setters")
	}
}

// The transfer command must embed exactly 56 bytes (Fig. 6b) and keep only
// opcode/flags/commandID/namespace intact.
func TestTransferPiggybackCapacityIs56(t *testing.T) {
	var c Command
	c.SetOpcode(OpKVTransfer)
	c.SetCommandID(9)
	frag := make([]byte, 80)
	for i := range frag {
		frag[i] = byte(200 - i)
	}
	n := c.SetTransferPiggyback(frag)
	if n != PiggybackTransferCapacity && n != 56 {
		t.Fatalf("embedded %d bytes, want 56", n)
	}
	if got := c.TransferPiggyback(n); !bytes.Equal(got, frag[:56]) {
		t.Fatal("transfer payload mismatch")
	}
	if c.Opcode() != OpKVTransfer || c.CommandID() != 9 {
		t.Fatal("dword0 corrupted")
	}
}

func TestPiggybackPartialFill(t *testing.T) {
	var c Command
	v := []byte{9, 8, 7}
	if n := c.SetWritePiggyback(v); n != 3 {
		t.Fatalf("embedded %d", n)
	}
	if got := c.WritePiggyback(3); !bytes.Equal(got, v) {
		t.Fatalf("got %v", got)
	}
	var tr Command
	if n := tr.SetTransferPiggyback(v); n != 3 {
		t.Fatalf("embedded %d", n)
	}
	if got := tr.TransferPiggyback(3); !bytes.Equal(got, v) {
		t.Fatalf("got %v", got)
	}
}

func TestPiggybackExtractClampsOversizedRequest(t *testing.T) {
	var c Command
	if got := c.WritePiggyback(100); len(got) != 35 {
		t.Fatalf("WritePiggyback(100) returned %d bytes", len(got))
	}
	if got := c.TransferPiggyback(100); len(got) != 56 {
		t.Fatalf("TransferPiggyback(100) returned %d bytes", len(got))
	}
}

// §3.2's arithmetic: a 128-byte value needs 3 commands (35 + 56 + 37).
func TestTransferCommandsForMatchesPaper(t *testing.T) {
	cases := []struct{ size, want int }{
		{0, 1}, {1, 1}, {35, 1}, {36, 2}, {91, 2}, {92, 3}, {128, 3},
		{2048, 1 + (2048-35+55)/56}, // 37 total
		{4096, 1 + (4096-35+55)/56}, // 74 total
	}
	for _, c := range cases {
		if got := TransferCommandsFor(c.size); got != c.want {
			t.Errorf("TransferCommandsFor(%d) = %d, want %d", c.size, got, c.want)
		}
	}
}

// Property: any value round-trips through (write cmd + transfer cmds)
// fragmentation and reassembly.
func TestPiggybackFragmentationRoundTripProperty(t *testing.T) {
	f := func(value []byte) bool {
		if len(value) > 8192 {
			value = value[:8192]
		}
		var w Command
		n := w.SetWritePiggyback(value)
		got := w.WritePiggyback(n)
		rest := value[n:]
		for len(rest) > 0 {
			var tr Command
			k := tr.SetTransferPiggyback(rest)
			got = append(got, tr.TransferPiggyback(k)...)
			rest = rest[k:]
		}
		return bytes.Equal(got, value)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: command count for an n-byte value is exactly
// 1 + ceil(max(0, n-35)/56).
func TestTransferCommandsForProperty(t *testing.T) {
	f := func(n uint16) bool {
		size := int(n)
		want := 1
		if size > 35 {
			want += (size - 35 + 55) / 56
		}
		return TransferCommandsFor(size) == want
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
