package nvme

import (
	"testing"
	"testing/quick"
)

func TestStatusStringsAndErr(t *testing.T) {
	if StatusSuccess.Err() != nil {
		t.Fatal("success status produced an error")
	}
	if StatusKeyNotFound.Err() == nil {
		t.Fatal("KeyNotFound status produced nil error")
	}
	for s, want := range map[Status]string{
		StatusSuccess: "Success", StatusInvalidField: "InvalidField",
		StatusKeyNotFound: "KeyNotFound", StatusCapacity: "CapacityExceeded",
		StatusInternal: "InternalError", StatusIterEnd: "IteratorEnd",
		Status(0xFF): "Status(0xff)",
	} {
		if got := s.String(); got != want {
			t.Errorf("Status(%#x).String() = %q, want %q", uint16(s), got, want)
		}
	}
}

func TestSQFetchInvisibleUntilDoorbell(t *testing.T) {
	q := NewSubmissionQueue(8)
	var c Command
	c.SetCommandID(1)
	if err := q.Push(c); err != nil {
		t.Fatal(err)
	}
	if _, err := q.Fetch(); err != ErrQueueEmpty {
		t.Fatalf("Fetch before doorbell: err = %v, want ErrQueueEmpty", err)
	}
	q.RingDoorbell()
	got, err := q.Fetch()
	if err != nil {
		t.Fatal(err)
	}
	if got.CommandID() != 1 {
		t.Fatalf("fetched command ID %d", got.CommandID())
	}
}

func TestSQFIFOOrder(t *testing.T) {
	q := NewSubmissionQueue(8)
	for i := 0; i < 5; i++ {
		var c Command
		c.SetCommandID(uint16(i))
		if err := q.Push(c); err != nil {
			t.Fatal(err)
		}
	}
	q.RingDoorbell()
	if q.Pending() != 5 {
		t.Fatalf("Pending = %d", q.Pending())
	}
	for i := 0; i < 5; i++ {
		c, err := q.Fetch()
		if err != nil {
			t.Fatal(err)
		}
		if c.CommandID() != uint16(i) {
			t.Fatalf("fetched %d at position %d", c.CommandID(), i)
		}
	}
}

func TestSQFullAndWraparound(t *testing.T) {
	q := NewSubmissionQueue(4) // capacity 3 usable slots
	for i := 0; i < 3; i++ {
		if err := q.Push(Command{}); err != nil {
			t.Fatalf("push %d: %v", i, err)
		}
	}
	if err := q.Push(Command{}); err != ErrQueueFull {
		t.Fatalf("4th push err = %v, want ErrQueueFull", err)
	}
	q.RingDoorbell()
	// Drain and refill repeatedly to exercise wraparound.
	for round := 0; round < 10; round++ {
		for q.Pending() > 0 {
			if _, err := q.Fetch(); err != nil {
				t.Fatal(err)
			}
		}
		for i := 0; i < 3; i++ {
			if err := q.Push(Command{}); err != nil {
				t.Fatalf("round %d push %d: %v", round, i, err)
			}
		}
		q.RingDoorbell()
	}
	if q.Pending() != 3 {
		t.Fatalf("Pending after wrap rounds = %d", q.Pending())
	}
}

func TestSQTooSmallPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("size-1 SQ did not panic")
		}
	}()
	NewSubmissionQueue(1)
}

func TestCQPostReap(t *testing.T) {
	q := NewCompletionQueue(4)
	if err := q.Post(Completion{CommandID: 3, Status: StatusSuccess}); err != nil {
		t.Fatal(err)
	}
	if q.Pending() != 1 {
		t.Fatalf("Pending = %d", q.Pending())
	}
	c, err := q.Reap()
	if err != nil {
		t.Fatal(err)
	}
	if c.CommandID != 3 {
		t.Fatalf("reaped ID %d", c.CommandID)
	}
	if _, err := q.Reap(); err != ErrQueueEmpty {
		t.Fatalf("reap empty err = %v", err)
	}
}

func TestCQFull(t *testing.T) {
	q := NewCompletionQueue(2)
	if err := q.Post(Completion{}); err != nil {
		t.Fatal(err)
	}
	if err := q.Post(Completion{}); err != ErrQueueFull {
		t.Fatalf("err = %v, want ErrQueueFull", err)
	}
}

func TestCQTooSmallPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("size-1 CQ did not panic")
		}
	}()
	NewCompletionQueue(1)
}

func TestQueuePair(t *testing.T) {
	qp := NewQueuePair(16)
	if qp.SQ.Size() != 16 || qp.CQ.Size() != 16 {
		t.Fatal("queue pair sizes wrong")
	}
}

// Property: any interleaving of pushes and fetch-drains preserves FIFO order
// and never loses or duplicates commands.
func TestSQInterleavingProperty(t *testing.T) {
	f := func(batches []uint8) bool {
		q := NewSubmissionQueue(64)
		var nextPush, nextFetch uint16
		for _, b := range batches {
			pushes := int(b % 8)
			for i := 0; i < pushes; i++ {
				var c Command
				c.SetCommandID(nextPush)
				if err := q.Push(c); err != nil {
					break
				}
				nextPush++
			}
			q.RingDoorbell()
			drains := int(b >> 4)
			for i := 0; i < drains; i++ {
				c, err := q.Fetch()
				if err != nil {
					break
				}
				if c.CommandID() != nextFetch {
					return false
				}
				nextFetch++
			}
		}
		q.RingDoorbell()
		for {
			c, err := q.Fetch()
			if err != nil {
				break
			}
			if c.CommandID() != nextFetch {
				return false
			}
			nextFetch++
		}
		return nextFetch == nextPush
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
