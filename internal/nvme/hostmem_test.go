package nvme

import (
	"bytes"
	"testing"
	"testing/quick"

	"bandslim/internal/pcie"
)

func TestHostMemoryAllocFree(t *testing.T) {
	m := NewHostMemory()
	a := m.AllocPage()
	b := m.AllocPage()
	if a == b {
		t.Fatal("two allocations returned the same address")
	}
	if a%pcie.MemoryPageSize != 0 || b%pcie.MemoryPageSize != 0 {
		t.Fatal("page addresses not 4 KiB aligned")
	}
	if m.LivePages() != 2 {
		t.Fatalf("LivePages = %d", m.LivePages())
	}
	m.FreePage(a)
	if m.LivePages() != 1 {
		t.Fatalf("LivePages after free = %d", m.LivePages())
	}
	if _, err := m.Page(a); err == nil {
		t.Fatal("freed page still accessible")
	}
}

func TestHostMemoryDoubleFreePanics(t *testing.T) {
	m := NewHostMemory()
	a := m.AllocPage()
	m.FreePage(a)
	defer func() {
		if recover() == nil {
			t.Fatal("double free did not panic")
		}
	}()
	m.FreePage(a)
}

func TestBuildPRPSmallValue(t *testing.T) {
	m := NewHostMemory()
	v := []byte("hello")
	l, err := BuildPRP(m, v)
	if err != nil {
		t.Fatal(err)
	}
	if len(l.Pages) != 1 {
		t.Fatalf("pages = %d", len(l.Pages))
	}
	if l.TransferSize() != pcie.MemoryPageSize {
		t.Fatalf("TransferSize = %d", l.TransferSize())
	}
	got, err := l.Gather(m)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, v) {
		t.Fatalf("gathered %q", got)
	}
	l.Free(m)
	if m.LivePages() != 0 {
		t.Fatal("pages leaked after Free")
	}
}

// The paper's (4K+32)B case: two pages, 8 KiB of DMA traffic.
func TestBuildPRPPageBoundaryBloat(t *testing.T) {
	m := NewHostMemory()
	v := make([]byte, 4096+32)
	for i := range v {
		v[i] = byte(i)
	}
	l, err := BuildPRP(m, v)
	if err != nil {
		t.Fatal(err)
	}
	if len(l.Pages) != 2 {
		t.Fatalf("pages = %d, want 2", len(l.Pages))
	}
	if l.TransferSize() != 8192 {
		t.Fatalf("TransferSize = %d, want 8192", l.TransferSize())
	}
	got, err := l.Gather(m)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, v) {
		t.Fatal("gather mismatch")
	}
}

func TestBuildPRPEmptyValue(t *testing.T) {
	m := NewHostMemory()
	l, err := BuildPRP(m, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(l.Pages) != 0 || l.TransferSize() != 0 {
		t.Fatal("empty value allocated pages")
	}
	got, err := l.Gather(m)
	if err != nil || len(got) != 0 {
		t.Fatalf("gather of empty list: %v, %v", got, err)
	}
}

func TestScatterRoundTrip(t *testing.T) {
	m := NewHostMemory()
	l, err := BuildPRP(m, make([]byte, 5000)) // 2 pages of capacity
	if err != nil {
		t.Fatal(err)
	}
	data := make([]byte, 5000)
	for i := range data {
		data[i] = byte(i * 3)
	}
	if err := l.Scatter(m, data); err != nil {
		t.Fatal(err)
	}
	got, err := l.Gather(m)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("scatter/gather mismatch")
	}
}

func TestScatterOverflow(t *testing.T) {
	m := NewHostMemory()
	l, err := BuildPRP(m, make([]byte, 100)) // 1 page capacity
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Scatter(m, make([]byte, 5000)); err == nil {
		t.Fatal("oversized scatter accepted")
	}
}

// Property: values of any size round-trip through PRP build/gather, and the
// page count is exactly ceil(len/4096).
func TestPRPRoundTripProperty(t *testing.T) {
	f := func(seed uint32, size uint16) bool {
		m := NewHostMemory()
		v := make([]byte, size)
		s := seed
		for i := range v {
			s = s*1664525 + 1013904223
			v[i] = byte(s >> 24)
		}
		l, err := BuildPRP(m, v)
		if err != nil {
			return false
		}
		if len(l.Pages) != pcie.PagesFor(len(v)) {
			return false
		}
		got, err := l.Gather(m)
		if err != nil {
			return false
		}
		if !bytes.Equal(got, v) {
			return false
		}
		l.Free(m)
		return m.LivePages() == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
