package bandslim

import (
	"bandslim/internal/driver"
	"bandslim/internal/fault"
	"bandslim/internal/nvme"
)

// Deterministic fault injection and crash recovery.
//
// A FaultPlan is a seed plus a list of rules; each rule arms one injection
// site (a NAND operation, a DMA direction, or command dispatch) with a
// trigger (the Nth occurrence, every Nth, probability p, or an absolute
// simulated time) and an effect (a media error, a transient transfer error,
// or a power cut). Everything is derived from the plan seed — two runs with
// the same config, workload, and plan inject the same faults at the same
// simulated times and recover to the same state.
//
// Effects and what survives them:
//
//   - Media errors retire the failing NAND block; the FTL redirects the
//     write and the operation usually still succeeds (bounded retries).
//   - Transient errors surface as retryable NVMe completions; the driver
//     re-submits under Config.Retry.
//   - Power cuts freeze the device: every volatile structure (MemTable,
//     open command, iterator, SQ/CQ rings) is lost, while battery-backed
//     state (the vLog page buffer and the index journal) survives, matching
//     the paper's platform (§2.2). DB.Recover mounts the device again and
//     replays the journal, restoring every acknowledged write.
//
// Plans come from ParseFaultPlan's text format:
//
//	seed 42
//	# one media error on the 3rd NAND program
//	nand.program nth=3 media
//	# 1% transient transfer errors on inbound DMA between 1ms and 5ms
//	dma.in p=0.01 from=1ms to=5ms transient
//	# cut power at 12ms
//	power at=12ms

// FaultPlan is a deterministic fault schedule: a seed plus rules. See
// ParseFaultPlan for the text format.
type FaultPlan = fault.Plan

// FaultRule arms one injection site with a trigger and an effect.
type FaultRule = fault.Rule

// FaultSite identifies where in the stack a rule injects.
type FaultSite = fault.Site

// Injection sites.
const (
	// FaultNandProgram fires on NAND page programs.
	FaultNandProgram = fault.SiteNandProgram
	// FaultNandRead fires on NAND page reads.
	FaultNandRead = fault.SiteNandRead
	// FaultNandErase fires on NAND block erases.
	FaultNandErase = fault.SiteNandErase
	// FaultDMAIn fires on host-to-device DMA transfers.
	FaultDMAIn = fault.SiteDMAIn
	// FaultDMAOut fires on device-to-host DMA transfers.
	FaultDMAOut = fault.SiteDMAOut
	// FaultExec fires on device command dispatch (any opcode).
	FaultExec = fault.SiteExec
)

// FaultEffect is what an armed rule does when it fires.
type FaultEffect = fault.Effect

// Effects.
const (
	// FaultMedia is a permanent NAND failure: the FTL retires the block.
	FaultMedia = fault.EffectMedia
	// FaultTransient is a retryable error: the driver re-submits.
	FaultTransient = fault.EffectTransient
	// FaultPowerCut truncates all volatile device state; recover with
	// DB.Recover.
	FaultPowerCut = fault.EffectPowerCut
)

// ParseFaultPlan parses the text plan format: one directive per line,
// '#' comments. `seed N` sets the plan seed; every other line is
// `<site> <trigger...> <effect>` with sites nand.program, nand.read,
// nand.erase, dma.in, dma.out, exec; triggers nth=N, every=N, p=F, at=DUR
// (plus optional window from=DUR to=DUR); effects media, transient,
// powercut. `power at=DUR` is shorthand for `exec at=DUR powercut`.
// Durations take ns/us/ms/s suffixes.
func ParseFaultPlan(text string) (*FaultPlan, error) {
	return fault.ParsePlan(text)
}

// FormatFaultPlan renders a plan back into the canonical text format
// ParseFaultPlan accepts (a fixed point: formatting a parsed plan and
// re-parsing yields the same plan).
func FormatFaultPlan(p *FaultPlan) string {
	return fault.FormatPlan(p)
}

// RetryPolicy bounds the driver's re-submission of retryable completions;
// see Config.Retry.
type RetryPolicy = driver.RetryPolicy

// DefaultRetryPolicy returns the driver's default: four retries with an
// exponential backoff starting at 10 µs.
func DefaultRetryPolicy() RetryPolicy {
	return driver.DefaultRetryPolicy()
}

// IsPowerLoss reports whether err is a power-loss completion — the device is
// down and DB.Recover (or ShardedDB.Recover) is required.
func IsPowerLoss(err error) bool {
	s, ok := nvme.StatusOf(err)
	return ok && s == nvme.StatusPowerLoss
}

// IsTransient reports whether err is a retryable transfer error that
// outlived the retry policy.
func IsTransient(err error) bool {
	s, ok := nvme.StatusOf(err)
	return ok && s == nvme.StatusTransient
}

// IsMedia reports whether err is an unrecovered NAND media error.
func IsMedia(err error) bool {
	s, ok := nvme.StatusOf(err)
	return ok && s == nvme.StatusMedia
}

// IsNotFound reports whether err is a key-not-found completion.
func IsNotFound(err error) bool {
	s, ok := nvme.StatusOf(err)
	return ok && s == nvme.StatusKeyNotFound
}

// Recover remounts the device after a power cut: fresh queues, the LSM index
// rolled back to its last durable flush, and the battery-backed index journal
// replayed — restoring every acknowledged write. Unacknowledged operations
// that were in flight when power was lost are atomically present or absent.
// A plan can cut power again during replay; Recover then returns a power-loss
// error and a subsequent Recover resumes where replay stopped.
func (db *DB) Recover() error {
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.closed {
		return ErrClosed
	}
	err := db.st.Drv.Recover()
	db.poll()
	return err
}
