package bandslim

import (
	"bytes"
	"fmt"
	"sort"
	"sync"
	"testing"

	"bandslim/internal/sim"
)

func openSharded(t *testing.T, shards int, mutate func(*Config)) *ShardedDB {
	t.Helper()
	cfg := smallConfig()
	if mutate != nil {
		mutate(&cfg)
	}
	s, err := OpenSharded(ShardedConfig{Shards: shards, PerShard: cfg})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	return s
}

// shardedWorkload is a deterministic mixed workload, applied identically to
// any coreKV front-end.
func shardedWorkload(t *testing.T, kv coreKV, ops int) {
	t.Helper()
	rng := sim.NewRNG(99)
	key := make([]byte, 4)
	for i := 0; i < ops; i++ {
		key[0], key[1], key[2], key[3] = byte(i>>24), byte(i>>16), byte(i>>8), byte(i)
		size := 16 + int(rng.Uint32()%2048)
		if err := kv.Put(key, bytes.Repeat([]byte{byte(i)}, size)); err != nil {
			t.Fatal(err)
		}
		if i%7 == 0 {
			if _, err := kv.Get(key); err != nil {
				t.Fatal(err)
			}
		}
		if i%31 == 0 {
			if err := kv.Delete(key); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := kv.Flush(); err != nil {
		t.Fatal(err)
	}
}

// A one-shard ShardedDB must be byte-identical to a plain DB: same PCIe
// traffic ledgers, same NAND write counts, same simulated time.
func TestShardedSingleShardMatchesDB(t *testing.T) {
	db := openSmall(t, nil)
	defer db.Close()
	s := openSharded(t, 1, nil)

	shardedWorkload(t, db, 600)
	shardedWorkload(t, s, 600)

	a, b := db.Stats(), s.Stats()
	checks := []struct {
		name string
		x, y int64
	}{
		{"Puts", a.Host.Puts, b.Host.Puts},
		{"Commands", a.Host.Commands, b.Host.Commands},
		{"PCIeBytes", a.PCIe.Bytes, b.PCIe.Bytes},
		{"PCIeTotalBytes", a.PCIe.TotalBytes, b.PCIe.TotalBytes},
		{"PCIeDMABytes", a.PCIe.DMABytes, b.PCIe.DMABytes},
		{"PCIeCmdBytes", a.PCIe.CommandBytes, b.PCIe.CommandBytes},
		{"MMIOBytes", a.PCIe.MMIOBytes, b.PCIe.MMIOBytes},
		{"CompletionBytes", a.PCIe.CompletionBytes, b.PCIe.CompletionBytes},
		{"NANDPageWrites", a.Device.NANDPageWrites, b.Device.NANDPageWrites},
		{"VLogFlushes", a.Device.VLogFlushes, b.Device.VLogFlushes},
		{"InlineChosen", a.Adaptive.Inline, b.Adaptive.Inline},
		{"PRPChosen", a.Adaptive.PRP, b.Adaptive.PRP},
		{"HybridChosen", a.Adaptive.Hybrid, b.Adaptive.Hybrid},
		{"Elapsed", int64(a.Host.Elapsed), int64(b.Host.Elapsed)},
	}
	for _, c := range checks {
		if c.x != c.y {
			t.Errorf("%s diverged: DB=%d ShardedDB=%d", c.name, c.x, c.y)
		}
	}
	if a.Host.WriteResp.Mean != b.Host.WriteResp.Mean || a.Host.WriteResp.P99 != b.Host.WriteResp.P99 {
		t.Errorf("latency diverged: DB mean=%v p99=%v, ShardedDB mean=%v p99=%v",
			a.Host.WriteResp.Mean, a.Host.WriteResp.P99, b.Host.WriteResp.Mean, b.Host.WriteResp.P99)
	}
	if db.Now() != s.Now() {
		t.Errorf("clocks diverged: DB=%v ShardedDB=%v", db.Now(), s.Now())
	}
}

func TestShardedRoundTrip(t *testing.T) {
	s := openSharded(t, 4, nil)
	for i := 0; i < 200; i++ {
		key := []byte(fmt.Sprintf("rt%04d", i))
		if err := s.Put(key, []byte(fmt.Sprintf("val-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 200; i++ {
		key := []byte(fmt.Sprintf("rt%04d", i))
		v, err := s.Get(key)
		if err != nil {
			t.Fatalf("Get(%s): %v", key, err)
		}
		if string(v) != fmt.Sprintf("val-%d", i) {
			t.Fatalf("Get(%s) = %q", key, v)
		}
	}
	if err := s.Delete([]byte("rt0100")); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Get([]byte("rt0100")); err == nil {
		t.Fatal("deleted key still readable")
	}
	if s.NumShards() != 4 {
		t.Fatalf("NumShards = %d", s.NumShards())
	}
}

// Keys must spread across shards and always route to the same one.
func TestShardedPartitionStable(t *testing.T) {
	s := openSharded(t, 4, nil)
	counts := make([]int, 4)
	for i := 0; i < 512; i++ {
		key := []byte(fmt.Sprintf("pk%04d", i))
		sh := s.ShardFor(key)
		if sh != s.ShardFor(key) {
			t.Fatal("ShardFor is unstable")
		}
		counts[sh]++
	}
	for i, c := range counts {
		if c == 0 {
			t.Fatalf("shard %d received no keys", i)
		}
	}
	// Per-shard stats must account for exactly the routed keys.
	for i := 0; i < 512; i++ {
		key := []byte(fmt.Sprintf("pk%04d", i))
		if err := s.Put(key, []byte{1}); err != nil {
			t.Fatal(err)
		}
	}
	var puts int64
	for i := 0; i < s.NumShards(); i++ {
		puts += s.ShardStats(i).Host.Puts
	}
	if puts != 512 {
		t.Fatalf("per-shard Puts sum to %d, want 512", puts)
	}
	if got := s.Stats().Host.Puts; got != 512 {
		t.Fatalf("aggregate Puts = %d, want 512", got)
	}
}

func TestShardedIteratorGlobalOrder(t *testing.T) {
	s := openSharded(t, 3, nil)
	var want []string
	for i := 0; i < 300; i++ {
		key := []byte(fmt.Sprintf("it%04d", i))
		if err := s.Put(key, []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
		want = append(want, string(key))
	}
	sort.Strings(want)
	it, err := s.NewIterator(nil)
	if err != nil {
		t.Fatal(err)
	}
	var got []string
	for it.Valid() {
		got = append(got, string(it.Key()))
		it.Next()
	}
	if it.Err() != nil {
		t.Fatal(it.Err())
	}
	if len(got) != len(want) {
		t.Fatalf("iterated %d keys, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("position %d: got %q, want %q", i, got[i], want[i])
		}
	}
}

func TestShardedStatsAggregation(t *testing.T) {
	s := openSharded(t, 4, nil)
	shardedWorkload(t, s, 400)
	agg := s.Stats()
	var sum Stats
	var maxElapsed sim.Duration
	for i := 0; i < s.NumShards(); i++ {
		p := s.ShardStats(i)
		sum.Host.Puts += p.Host.Puts
		sum.Host.Commands += p.Host.Commands
		sum.PCIe.Bytes += p.PCIe.Bytes
		sum.PCIe.TotalBytes += p.PCIe.TotalBytes
		sum.Device.NANDPageWrites += p.Device.NANDPageWrites
		sum.Device.VLogFlushes += p.Device.VLogFlushes
		if p.Host.Elapsed > maxElapsed {
			maxElapsed = p.Host.Elapsed
		}
	}
	if agg.Host.Puts != sum.Host.Puts || agg.Host.Puts != 400 {
		t.Errorf("Puts: aggregate %d, shard sum %d, want 400", agg.Host.Puts, sum.Host.Puts)
	}
	if agg.Host.Commands != sum.Host.Commands {
		t.Errorf("Commands: aggregate %d, shard sum %d", agg.Host.Commands, sum.Host.Commands)
	}
	if agg.PCIe.Bytes != sum.PCIe.Bytes || agg.PCIe.TotalBytes != sum.PCIe.TotalBytes {
		t.Errorf("PCIe ledgers: aggregate %d/%d, shard sums %d/%d",
			agg.PCIe.Bytes, agg.PCIe.TotalBytes, sum.PCIe.Bytes, sum.PCIe.TotalBytes)
	}
	if agg.Device.NANDPageWrites != sum.Device.NANDPageWrites {
		t.Errorf("NANDPageWrites: aggregate %d, shard sum %d", agg.Device.NANDPageWrites, sum.Device.NANDPageWrites)
	}
	if agg.Host.Elapsed != maxElapsed {
		t.Errorf("Elapsed: aggregate %v, max shard %v", agg.Host.Elapsed, maxElapsed)
	}
	if agg.Host.WriteResp.Mean <= 0 {
		t.Error("merged WriteRespMean not positive")
	}
	if agg.Host.ThroughputKops <= 0 {
		t.Error("aggregate ThroughputKops not positive")
	}
}

func TestShardedClose(t *testing.T) {
	s := openSharded(t, 2, nil)
	if err := s.Put([]byte("ck"), []byte("v")); err != nil {
		t.Fatal(err)
	}
	it, err := s.NewIterator(nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil { // idempotent
		t.Fatal(err)
	}
	if err := s.Put([]byte("ck"), []byte("v")); err != ErrClosed {
		t.Fatalf("Put after Close: %v, want ErrClosed", err)
	}
	if _, err := s.Get([]byte("ck")); err != ErrClosed {
		t.Fatalf("Get after Close: %v, want ErrClosed", err)
	}
	if err := s.Flush(); err != ErrClosed {
		t.Fatalf("Flush after Close: %v, want ErrClosed", err)
	}
	if _, err := s.NewIterator(nil); err != ErrClosed {
		t.Fatalf("NewIterator after Close: %v, want ErrClosed", err)
	}
	it.Next()
	if it.Err() != ErrClosed {
		t.Fatalf("outstanding iterator after Close: %v, want ErrClosed", it.Err())
	}
	// Stats and Now stay readable after Close.
	if s.Stats().Host.Puts != 1 {
		t.Fatal("Stats unreadable after Close")
	}
	if s.Now() <= 0 {
		t.Fatal("Now unreadable after Close")
	}
}

func TestOpenShardedValidates(t *testing.T) {
	if _, err := OpenSharded(ShardedConfig{Shards: 0}); err == nil {
		t.Fatal("Shards: 0 accepted")
	}
	if _, err := OpenSharded(ShardedConfig{Shards: -3}); err == nil {
		t.Fatal("negative Shards accepted")
	}
}

// Run with -race: concurrent Put/Get/Delete plus Stats against a ShardedDB.
func TestShardedConcurrentAccess(t *testing.T) {
	s := openSharded(t, 4, nil)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			// Goroutines share shards, so values are read through GetInto
			// with a goroutine-owned dst (Get returns per-shard views).
			var dst []byte
			for i := 0; i < 50; i++ {
				key := []byte(fmt.Sprintf("cc%d-%03d", g, i))
				if err := s.Put(key, bytes.Repeat([]byte{byte(g)}, 64)); err != nil {
					t.Error(err)
					return
				}
				v, err := s.GetInto(key, dst)
				if err != nil || len(v) != 64 || v[0] != byte(g) {
					t.Errorf("GetInto(%s) = %d bytes, %v", key, len(v), err)
					return
				}
				dst = v
				if i%10 == 0 {
					if err := s.Delete(key); err != nil {
						t.Error(err)
						return
					}
				}
			}
		}(g)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 20; i++ {
			_ = s.Stats()
			_ = s.Now()
		}
	}()
	wg.Wait()
	if got := s.Stats().Host.Puts; got != 8*50 {
		t.Fatalf("Puts = %d, want %d", got, 8*50)
	}
}

// Run with -race: a deep-queue storm — concurrent batch reads riding the
// depth-8 submission window on every shard, interleaved with batch writes,
// live Tune calls, and Stats/Inspect polling. Exercises the window FIFO,
// wait-frame recycling, and the Tune fan-out under maximal interleaving.
func TestShardedWindowStorm(t *testing.T) {
	s := openSharded(t, 4, func(c *Config) {
		c.Submission = SubmissionConfig{
			QueueDepth:       8,
			DoorbellBatch:    4,
			CoalesceInterval: SimMicrosecond,
		}
	})
	const nkeys = 48
	keys := make([][]byte, nkeys)
	for i := range keys {
		keys[i] = []byte(fmt.Sprintf("st%03d", i))
		if err := s.Put(keys[i], bytes.Repeat([]byte{byte(i)}, 96)); err != nil {
			t.Fatal(err)
		}
	}
	var wg sync.WaitGroup
	for g := 0; g < 6; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			vals := make([][]byte, nkeys)
			miss := make([]bool, nkeys)
			for round := 0; round < 25; round++ {
				if g%2 == 0 {
					out, err := s.GetBatch(keys, vals)
					if err != nil {
						t.Errorf("storm GetBatch: %v", err)
						return
					}
					for i := range out {
						if len(out[i]) != 96 || out[i][0] != byte(i) {
							t.Errorf("storm GetBatch: key %d holds %d bytes", i, len(out[i]))
							return
						}
					}
				} else {
					if _, err := s.GetBatchSparse(keys, vals, miss); err != nil {
						t.Errorf("storm GetBatchSparse: %v", err)
						return
					}
					for i := range miss {
						if miss[i] {
							t.Errorf("storm GetBatchSparse: key %d reported missing", i)
							return
						}
					}
				}
			}
		}(g)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		wkeys := make([][]byte, 8)
		wvals := make([][]byte, 8)
		for i := range wkeys {
			wkeys[i] = []byte(fmt.Sprintf("sw%03d", i))
			wvals[i] = bytes.Repeat([]byte{0xAB}, 64)
		}
		for round := 0; round < 25; round++ {
			if err := s.PutBatch(wkeys, wvals); err != nil {
				t.Errorf("storm PutBatch: %v", err)
				return
			}
		}
	}()
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 20; i++ {
			m := Piggyback
			if i%2 == 0 {
				m = Adaptive
			}
			if err := s.Tune(Tuning{Method: &m}); err != nil {
				t.Errorf("storm Tune: %v", err)
				return
			}
			_ = s.Stats()
			_ = s.Submission()
		}
	}()
	wg.Wait()
	if sub := s.Submission(); sub.QueueDepth != 8 {
		t.Fatalf("Submission after storm = %+v, want depth 8", sub)
	}
}
